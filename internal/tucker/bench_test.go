package tucker

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func benchTensor(b *testing.B) *tensor.Sparse {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	shape := tensor.Shape{16, 16, 16, 16}
	d := tensor.NewDense(shape)
	for i := range d.Data {
		if rng.Float64() < 0.1 {
			d.Data[i] = rng.NormFloat64()
		}
	}
	return d.ToSparse(0)
}

// BenchmarkHOSVD decomposes a fresh plan-cache view per iteration (the
// transient-tensor protocol): every pipeline decomposition consumes a
// freshly stitched, plan-less tensor, so letting plans warm across b.N
// iterations would amortise a cost no real run ever amortises;
// BenchmarkHOSVDWarm tracks that kernel-steady-state number separately.
func BenchmarkHOSVD(b *testing.B) {
	x := benchTensor(b)
	ranks := UniformRanks(4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HOSVD(x.PlanlessView(), ranks)
	}
}

// BenchmarkHOSVDWarm reuses one tensor across iterations so its mode
// plans stay cached: the kernel steady state, with plan compilation
// excluded. The gap between this and BenchmarkHOSVD is the per-
// decomposition plan-compilation cost the sketch fast path avoids.
func BenchmarkHOSVDWarm(b *testing.B) {
	x := benchTensor(b)
	ranks := UniformRanks(4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HOSVD(x, ranks)
	}
}

// BenchmarkSketchedHOSVD measures the randomized-sketch fast path against
// BenchmarkHOSVD under the identical transient-tensor protocol: each
// iteration decomposes a fresh plan-less view, so the plain side pays
// plan compilation on the full nnz while the sketched side pays the two
// sketch passes plus compilation on the KeepFrac-sized sketch. keep=1
// short-circuits to plain HOSVD (the protocol's own baseline); smaller
// fractions cut every kernel's nnz. BENCH_7.json gates keep=0.1 at
// >= 3x over BenchmarkHOSVD (cmd/benchjson -speedup).
func BenchmarkSketchedHOSVD(b *testing.B) {
	x := benchTensor(b)
	ranks := UniformRanks(4, 4)
	for _, keep := range []float64{1, 0.5, 0.1} {
		b.Run(fmt.Sprintf("keep=%g", keep), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := SketchedHOSVD(x.PlanlessView(), ranks, SketchOptions{KeepFrac: keep, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHOOI(b *testing.B) {
	x := benchTensor(b)
	ranks := UniformRanks(4, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HOOI(x, ranks, HOOIOptions{MaxIterations: 3})
	}
}

func BenchmarkReconstruct(b *testing.B) {
	x := benchTensor(b)
	d := HOSVD(x, UniformRanks(4, 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Reconstruct()
	}
}
