package tucker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func TestHOOIExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	x := lowRankTensor(rng, tensor.Shape{5, 6, 4}, []int{2, 2, 2})
	d := HOOIDense(x, []int{2, 2, 2}, HOOIOptions{})
	if err := d.RelativeError(x); err > 1e-8 {
		t.Fatalf("exact-rank HOOI error = %v", err)
	}
}

func TestHOOINotWorseThanHOSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for trial := 0; trial < 5; trial++ {
		x := randomDense(rng, tensor.Shape{6, 6, 6})
		sp := x.ToSparse(0)
		ranks := []int{2, 2, 2}
		hosvdErr := HOSVD(sp, ranks).RelativeError(x)
		hooiErr := HOOI(sp, ranks, HOOIOptions{MaxIterations: 15}).RelativeError(x)
		if hooiErr > hosvdErr+1e-9 {
			t.Fatalf("trial %d: HOOI error %v worse than HOSVD %v", trial, hooiErr, hosvdErr)
		}
	}
}

func TestHOOIFactorsOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	x := randomDense(rng, tensor.Shape{5, 4, 6}).ToSparse(0)
	d := HOOI(x, []int{3, 2, 3}, HOOIOptions{})
	for n, f := range d.Factors {
		if !mat.IsOrthonormalCols(f, 1e-9) {
			t.Fatalf("HOOI factor %d not orthonormal", n)
		}
	}
}

func TestHOOIEmptyTensor(t *testing.T) {
	d := HOOIDense(tensor.NewDense(tensor.Shape{3, 3}), []int{2, 2}, HOOIOptions{})
	if d.Core.Norm() != 0 {
		t.Fatal("empty tensor core not zero")
	}
}

func TestFitOf(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	x := randomDense(rng, tensor.Shape{5, 5, 5}).ToSparse(0)
	// Full-rank: fit must be ~1.
	full := HOSVD(x, []int{5, 5, 5})
	fit, err := FitOf(full, x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit-1) > 1e-9 {
		t.Fatalf("full-rank fit = %v", fit)
	}
	// Truncated: fit matches the explicit reconstruction error.
	trunc := HOSVD(x, []int{2, 2, 2})
	fit, err = FitOf(trunc, x)
	if err != nil {
		t.Fatal(err)
	}
	explicit := 1 - trunc.RelativeError(x.ToDense())
	if math.Abs(fit-explicit) > 1e-9 {
		t.Fatalf("FitOf %v != explicit fit %v", fit, explicit)
	}
}

func TestFitOfRejectsNonOrthonormal(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	x := randomDense(rng, tensor.Shape{4, 4}).ToSparse(0)
	d := HOSVD(x, []int{2, 2})
	d.Factors[0] = mat.Scale(2, d.Factors[0])
	if _, err := FitOf(d, x); err == nil {
		t.Fatal("non-orthonormal factors accepted")
	}
}

func TestFitOfEmptyTensor(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{3, 3})
	d := HOSVD(x, []int{2, 2})
	fit, err := FitOf(d, x)
	if err != nil {
		t.Fatal(err)
	}
	if fit != 1 {
		t.Fatalf("empty tensor fit = %v", fit)
	}
}

func TestSTHOSVDExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(145))
	x := lowRankTensor(rng, tensor.Shape{5, 6, 4}, []int{2, 2, 2})
	d := STHOSVDDense(x, []int{2, 2, 2})
	if err := d.RelativeError(x); err > 1e-8 {
		t.Fatalf("exact-rank ST-HOSVD error = %v", err)
	}
	sp := x.ToSparse(0)
	ds := STHOSVD(sp, []int{2, 2, 2})
	if err := ds.RelativeError(x); err > 1e-8 {
		t.Fatalf("sparse exact-rank ST-HOSVD error = %v", err)
	}
}

func TestSTHOSVDCloseToHOSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(146))
	for trial := 0; trial < 5; trial++ {
		x := randomDense(rng, tensor.Shape{6, 5, 6})
		sp := x.ToSparse(0)
		ranks := []int{3, 2, 3}
		hosvdErr := HOSVD(sp, ranks).RelativeError(x)
		stErr := STHOSVD(sp, ranks).RelativeError(x)
		// ST-HOSVD satisfies the same quasi-optimality bound as HOSVD
		// (error ≤ √N × optimal); in practice the two land close together.
		if stErr > hosvdErr*1.5+1e-9 {
			t.Fatalf("trial %d: ST-HOSVD error %v far above HOSVD %v", trial, stErr, hosvdErr)
		}
	}
}

func TestSTHOSVDFactorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(147))
	x := randomDense(rng, tensor.Shape{5, 4, 6}).ToSparse(0)
	d := STHOSVD(x, []int{3, 2, 4})
	for n, want := range []struct{ rows, cols int }{{5, 3}, {4, 2}, {6, 4}} {
		if d.Factors[n].Rows != want.rows || d.Factors[n].Cols != want.cols {
			t.Fatalf("factor %d dims %d×%d", n, d.Factors[n].Rows, d.Factors[n].Cols)
		}
		if !mat.IsOrthonormalCols(d.Factors[n], 1e-9) {
			t.Fatalf("factor %d not orthonormal", n)
		}
	}
	if !d.Core.Shape.Equal(tensor.Shape{3, 2, 4}) {
		t.Fatalf("core shape %v", d.Core.Shape)
	}
}
