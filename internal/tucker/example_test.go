package tucker_test

import (
	"fmt"

	"repro/internal/tensor"
	"repro/internal/tucker"
)

func ExampleHOSVD() {
	// Decompose a sparse 3-mode tensor at rank (2, 2, 2).
	x := tensor.NewSparse(tensor.Shape{4, 4, 4})
	x.Append([]int{0, 0, 0}, 1)
	x.Append([]int{1, 1, 1}, 2)
	x.Append([]int{2, 2, 2}, 3)
	d := tucker.HOSVD(x, []int{2, 2, 2})
	fmt.Println("core shape:", d.Core.Shape)
	fmt.Println("factor dims:", d.Factors[0].Rows, "x", d.Factors[0].Cols)
	// Output:
	// core shape: [2 2 2]
	// factor dims: 4 x 2
}

func ExampleUniformRanks() {
	fmt.Println(tucker.UniformRanks(5, 10))
	// Output: [10 10 10 10 10]
}

func ExampleClipRanks() {
	// Requested ranks are bounded by each mode's size.
	fmt.Println(tucker.ClipRanks(tensor.Shape{3, 8}, []int{5, 5}))
	// Output: [3 5]
}
