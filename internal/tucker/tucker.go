// Package tucker implements Tucker decomposition via HOSVD (Algorithm 1 of
// the paper): for each mode, the factor matrix holds the leading left
// singular vectors of the mode-n matricization, and the core tensor is
// recovered as G = X ×₁ U(1)ᵀ ×₂ … ×ₙ U(N)ᵀ.
//
// Left singular vectors are obtained from the eigendecomposition of the
// small Iₙ×Iₙ matricization Gram matrix, computed directly from sparse
// coordinates (tensor.ModeGram) or dense fibers (tensor.ModeGramDense), so
// the potentially enormous unfoldings are never materialised.
package tucker

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// Decomposition is a Tucker decomposition: a dense core and one factor
// matrix (Iₙ × rₙ, orthonormal columns) per mode.
type Decomposition struct {
	Core    *tensor.Dense
	Factors []*mat.Matrix
	// Ranks holds the effective (clipped) per-mode ranks.
	Ranks []int
}

// ClipRanks bounds each requested rank by its mode size.
func ClipRanks(shape tensor.Shape, ranks []int) []int {
	if len(ranks) != shape.Order() {
		panic(fmt.Sprintf("tucker: %d ranks for order-%d tensor", len(ranks), shape.Order()))
	}
	out := make([]int, len(ranks))
	for n, r := range ranks {
		if r < 1 {
			panic(fmt.Sprintf("tucker: rank %d for mode %d must be positive", r, n))
		}
		if r > shape[n] {
			r = shape[n]
		}
		out[n] = r
	}
	return out
}

// UniformRanks returns an order-length rank vector with every entry r, the
// paper's uniform target-rank setting.
func UniformRanks(order, r int) []int {
	out := make([]int, order)
	for i := range out {
		out[i] = r
	}
	return out
}

// HOSVD decomposes a sparse tensor with the given per-mode target ranks.
func HOSVD(x *tensor.Sparse, ranks []int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Order()
	factors := make([]*mat.Matrix, order)
	for n := 0; n < order; n++ {
		factors[n] = tensor.LeadingModeVectors(x, n, ranks[n])
	}
	core := tensor.MultiTTMSparse(x, tensor.TransposeAll(factors))
	return Decomposition{Core: core, Factors: factors, Ranks: ranks}
}

// HOSVDDense decomposes a dense tensor with the given per-mode target
// ranks.
func HOSVDDense(x *tensor.Dense, ranks []int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Shape.Order()
	factors := make([]*mat.Matrix, order)
	for n := 0; n < order; n++ {
		factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDense(x, n), ranks[n])
	}
	core := tensor.MultiTTM(x, tensor.TransposeAll(factors))
	return Decomposition{Core: core, Factors: factors, Ranks: ranks}
}

// Reconstruct expands the decomposition back to the full tensor:
// X̃ = G ×₁ U(1) ×₂ … ×ₙ U(N).
func (d Decomposition) Reconstruct() *tensor.Dense {
	return tensor.TuckerReconstruct(d.Core, d.Factors)
}

// RelativeError returns ‖X̃ − ref‖F / ‖ref‖F for the decomposition's
// reconstruction against a reference tensor of the same shape.
func (d Decomposition) RelativeError(ref *tensor.Dense) float64 {
	recon := d.Reconstruct()
	return recon.Sub(ref).Norm() / ref.Norm()
}

// CoreFromFactors recovers a core tensor for externally supplied factor
// matrices: G = X ×₁ U(1)ᵀ …. M2TD uses this to project the join tensor
// through fused factor matrices.
func CoreFromFactors(x *tensor.Sparse, factors []*mat.Matrix) *tensor.Dense {
	return tensor.MultiTTMSparse(x, tensor.TransposeAll(factors))
}
