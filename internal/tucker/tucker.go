// Package tucker implements Tucker decomposition via HOSVD (Algorithm 1 of
// the paper): for each mode, the factor matrix holds the leading left
// singular vectors of the mode-n matricization, and the core tensor is
// recovered as G = X ×₁ U(1)ᵀ ×₂ … ×ₙ U(N)ᵀ.
//
// Left singular vectors are obtained from the eigendecomposition of the
// small Iₙ×Iₙ matricization Gram matrix, computed directly from sparse
// coordinates (tensor.ModeGram) or dense fibers (tensor.ModeGramDense), so
// the potentially enormous unfoldings are never materialised.
package tucker

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Decomposition is a Tucker decomposition: a dense core and one factor
// matrix (Iₙ × rₙ, orthonormal columns) per mode.
type Decomposition struct {
	Core    *tensor.Dense
	Factors []*mat.Matrix
	// Ranks holds the effective (clipped) per-mode ranks.
	Ranks []int
}

// ClipRanks bounds each requested rank by its mode size.
func ClipRanks(shape tensor.Shape, ranks []int) []int {
	if len(ranks) != shape.Order() {
		panic(fmt.Sprintf("tucker: %d ranks for order-%d tensor", len(ranks), shape.Order()))
	}
	out := make([]int, len(ranks))
	for n, r := range ranks {
		if r < 1 {
			panic(fmt.Sprintf("tucker: rank %d for mode %d must be positive", r, n))
		}
		if r > shape[n] {
			r = shape[n]
		}
		out[n] = r
	}
	return out
}

// UniformRanks returns an order-length rank vector with every entry r, the
// paper's uniform target-rank setting.
func UniformRanks(order, r int) []int {
	out := make([]int, order)
	for i := range out {
		out[i] = r
	}
	return out
}

// HOSVD decomposes a sparse tensor with the given per-mode target ranks.
// It runs on the package-default worker pool; see HOSVDWorkers.
func HOSVD(x *tensor.Sparse, ranks []int) Decomposition { return HOSVDWorkers(x, ranks, 0) }

// HOSVDWorkers is HOSVD on an explicit worker count (workers <= 0 selects
// the parallel package default, 1 forces serial execution). The per-mode
// factor extractions are independent by construction, so they run
// concurrently — one task per mode, each itself using the parallel Gram
// kernels — and the core recovery uses the parallel sparse TTM chain.
// Every mode's factor is computed exactly as in the serial loop, so the
// decomposition is bit-identical for any worker count.
func HOSVDWorkers(x *tensor.Sparse, ranks []int, workers int) Decomposition {
	return HOSVDSpan(x, ranks, workers, nil)
}

// HOSVDSpan is HOSVDWorkers with stage-span instrumentation: one child
// span per mode (created serially before the pool runs, so the child
// order is mode order for any worker count) plus a "core" child for the
// TTM chain. Span counters — per-mode ranks and the core cell count —
// depend only on the tensor shape and ranks, so the span structure is
// deterministic. A nil span disables instrumentation at the cost of one
// nil check per site.
func HOSVDSpan(x *tensor.Sparse, ranks []int, workers int, span *obs.Span) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Order()
	factors := make([]*mat.Matrix, order)
	tasks := make([]func(), order)
	// Split the worker budget between the concurrent per-mode tasks and
	// the kernels inside them, so a workers=W request occupies ~W
	// goroutines rather than W per mode. Purely scheduling: the Gram
	// strip grids are worker-independent, so the split never changes bits.
	inner := parallel.SplitWorkers(workers, order)
	for n := 0; n < order; n++ {
		n := n
		ms := span.Start(fmt.Sprintf("mode%d", n))
		ms.Set("rank", int64(ranks[n]))
		tasks[n] = func() {
			defer ms.Finish()
			factors[n] = tensor.LeadingModeVectorsWorkers(x, n, ranks[n], inner)
		}
	}
	parallel.Do(workers, tasks...)
	cs := span.Start("core")
	core := tensor.MultiTTMSparseWorkers(x, tensor.TransposeAll(factors), workers)
	cs.Set("cells", int64(len(core.Data)))
	cs.Finish()
	return Decomposition{Core: core, Factors: factors, Ranks: ranks}
}

// HOSVDDense decomposes a dense tensor with the given per-mode target
// ranks. It runs on the package-default worker pool; see
// HOSVDDenseWorkers.
func HOSVDDense(x *tensor.Dense, ranks []int) Decomposition { return HOSVDDenseWorkers(x, ranks, 0) }

// HOSVDDenseWorkers is HOSVDDense on an explicit worker count, with the
// independent per-mode factor extractions running concurrently.
func HOSVDDenseWorkers(x *tensor.Dense, ranks []int, workers int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Shape.Order()
	factors := make([]*mat.Matrix, order)
	tasks := make([]func(), order)
	inner := parallel.SplitWorkers(workers, order)
	for n := 0; n < order; n++ {
		n := n
		tasks[n] = func() {
			factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDenseWorkers(x, n, inner), ranks[n])
		}
	}
	parallel.Do(workers, tasks...)
	core := tensor.MultiTTMWorkers(x, tensor.TransposeAll(factors), workers)
	return Decomposition{Core: core, Factors: factors, Ranks: ranks}
}

// Reconstruct expands the decomposition back to the full tensor:
// X̃ = G ×₁ U(1) ×₂ … ×ₙ U(N).
func (d Decomposition) Reconstruct() *tensor.Dense {
	return tensor.TuckerReconstruct(d.Core, d.Factors)
}

// RelativeError returns ‖X̃ − ref‖F / ‖ref‖F for the decomposition's
// reconstruction against a reference tensor of the same shape.
func (d Decomposition) RelativeError(ref *tensor.Dense) float64 {
	recon := d.Reconstruct()
	return recon.Sub(ref).Norm() / ref.Norm()
}

// CoreFromFactors recovers a core tensor for externally supplied factor
// matrices: G = X ×₁ U(1)ᵀ …. M2TD uses this to project the join tensor
// through fused factor matrices. It runs on the package-default worker
// pool; see CoreFromFactorsWorkers.
func CoreFromFactors(x *tensor.Sparse, factors []*mat.Matrix) *tensor.Dense {
	return CoreFromFactorsWorkers(x, factors, 0)
}

// CoreFromFactorsWorkers is CoreFromFactors on an explicit worker count.
func CoreFromFactorsWorkers(x *tensor.Sparse, factors []*mat.Matrix, workers int) *tensor.Dense {
	return tensor.MultiTTMSparseWorkers(x, tensor.TransposeAll(factors), workers)
}
