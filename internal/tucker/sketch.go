package tucker

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Randomized entry sketching (the MACH/PARCUBE-style fast path): each
// stored cell is kept with probability proportional to its magnitude
// (clamped to 1) and scaled by the inverse of that probability, making
// the sketch an unbiased estimator of the tensor while cutting the nnz
// every downstream kernel pays for.
//
// The keep decision is COUNTER-BASED: a splitmix64 hash of the cell's
// linear index under the sketch seed (the same discipline as
// internal/faults), never a stateful generator. A *rand.Rand would tie
// every decision to the traversal order and consumption count, so the
// sketch could not be computed in parallel or reproduced from the seed
// alone; the hash makes keep/scale a pure function of (seed, cell), which
// is what lets the mask pass fan out over any worker count and still
// produce the identical sketch — the whole package stays inside the
// repo's bit-stability contract (DESIGN.md §12).

// sketchSalt domain-separates sketch hashing from the fault injector's
// use of the same mixer ("M2TDSKCH").
const sketchSalt = 0x4d325444534b4348

// sketchMix is the splitmix64 finaliser (mirrors internal/faults): a
// high-quality 64-bit mixer whose output is a pure function of its input.
func sketchMix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// sketchUnit maps (seed, cell linear index) to a uniform float in [0, 1):
// the per-cell biased coin. Duplicate entries at one coordinate share the
// coin by construction (the sketch is a cell-level decision).
func sketchUnit(seed int64, lin uint64) float64 {
	return float64(sketchMix(lin^sketchMix(uint64(seed)^sketchSalt))>>11) / (1 << 53)
}

// SketchOptions configures sketched decompositions.
type SketchOptions struct {
	// KeepFrac is the expected fraction of cells retained, in (0, 1].
	// KeepFrac == 1 short-circuits SketchedHOSVD/SketchedHOOI to the plain
	// decomposition (bit-identical to calling it directly).
	KeepFrac float64
	// Seed drives the per-cell keep decisions. The sketch is a pure
	// function of (tensor, KeepFrac, Seed) — identical for any worker
	// count and across runs.
	Seed int64
	// Workers is the worker-pool size for the sketch passes (0 selects the
	// parallel package default, 1 forces serial). Results are bit-identical
	// for any value.
	Workers int
	// Span, when non-nil, receives a "sketch" child span carrying the
	// kept/dropped/saturated counters, the scale histogram, and the
	// derived-plan count — all deterministic. SketchedHOSVD/SketchedHOOI
	// additionally pass it through to the decomposition.
	Span *obs.Span
}

// SketchStats is the accounting of one sketch pass. Every field is a pure
// function of (tensor, KeepFrac, Seed), so the stats are valid
// deterministic span counters and safe to assert exactly in tests.
type SketchStats struct {
	// InputNNZ is the source tensor's stored-entry count.
	InputNNZ int
	// Kept is the sketch's stored-entry count.
	Kept int
	// Saturated counts entries whose keep probability clamped to 1: they
	// are retained unscaled and contribute no variance. A sketch that is
	// mostly saturated is effectively exact.
	Saturated int
	// PlansDerived counts the mode plans inherited from the source
	// tensor's cache instead of recompiled (see Sparse.SelectScaled).
	PlansDerived int
	// ScaleHist is a log₂ histogram of the kept entries'
	// inverse-probability scale factors: bucket k counts scales in
	// [2ᵏ, 2ᵏ⁺¹), with the last bucket open-ended. Saturated entries land
	// in bucket 0 (scale 1).
	ScaleHist [8]int64
}

// Dropped returns the number of entries the sketch discarded.
func (s SketchStats) Dropped() int { return s.InputNNZ - s.Kept }

// Record writes the stats onto span as deterministic counters. Callers
// that wrap a sketch in their own named span (core.DecomposeCtx opens one
// per sketched tensor) record through here; Sketch itself records on a
// "sketch" child of SketchOptions.Span.
func (s SketchStats) Record(span *obs.Span) {
	span.Set("input_nnz", int64(s.InputNNZ))
	span.Set("kept", int64(s.Kept))
	span.Set("dropped", int64(s.Dropped()))
	span.Set("saturated", int64(s.Saturated))
	span.Set("plans_derived", int64(s.PlansDerived))
	for k, c := range s.ScaleHist {
		if c != 0 {
			span.Set(fmt.Sprintf("scale_pow2_%d", k), c)
		}
	}
}

// span records the stats on a "sketch" child of parent.
func (s SketchStats) span(parent *obs.Span) {
	ss := parent.Start("sketch")
	s.Record(ss)
	ss.Finish()
}

// SketchedHOSVD runs HOSVD on a biased random sketch of the tensor: each
// cell is kept with probability proportional to its magnitude (clamped to
// 1) and scaled by the inverse of that probability, making the sketch an
// unbiased estimator of the tensor. Accuracy degrades gracefully as
// KeepFrac shrinks; KeepFrac == 1 short-circuits to plain HOSVD
// (bit-identical). The returned stats account for the sketch pass.
func SketchedHOSVD(x *tensor.Sparse, ranks []int, opts SketchOptions) (Decomposition, SketchStats, error) {
	if opts.KeepFrac == 1 {
		stats := SketchStats{InputNNZ: x.NNZ(), Kept: x.NNZ()}
		return HOSVDSpan(x, ranks, opts.Workers, opts.Span), stats, nil
	}
	sk, stats, err := Sketch(x, opts)
	if err != nil {
		return Decomposition{}, stats, err
	}
	return HOSVDSpan(sk, ranks, opts.Workers, opts.Span), stats, nil
}

// SketchedHOOI runs HOOI on the sketch; hopts.Workers and hopts.Span
// default to the sketch options' values when unset. KeepFrac == 1
// short-circuits to plain HOOI.
func SketchedHOOI(x *tensor.Sparse, ranks []int, opts SketchOptions, hopts HOOIOptions) (Decomposition, SketchStats, error) {
	if hopts.Workers == 0 {
		hopts.Workers = opts.Workers
	}
	if hopts.Span == nil {
		hopts.Span = opts.Span
	}
	if opts.KeepFrac == 1 {
		stats := SketchStats{InputNNZ: x.NNZ(), Kept: x.NNZ()}
		return HOOI(x, ranks, hopts), stats, nil
	}
	sk, stats, err := Sketch(x, opts)
	if err != nil {
		return Decomposition{}, stats, err
	}
	return HOOI(sk, ranks, hopts), stats, nil
}

// Sketch returns the biased random sketch itself: cell i is kept when its
// hash coin sketchUnit(seed, linear index) falls below
// pᵢ = min(1, KeepFrac·nnz·|vᵢ|/Σ|v|), and stored as vᵢ/pᵢ.
//
// Both passes are strip-parallel and bit-identical for any worker count:
// the Σ|v| scan reduces over a fixed strip grid (tensor.AbsSum), and the
// keep/scale mask is written per entry from the hash — no cross-entry
// state — then materialised by tensor.SelectScaled, which also inherits
// the source's quarantine accounting and any cached mode plans.
func Sketch(x *tensor.Sparse, opts SketchOptions) (*tensor.Sparse, SketchStats, error) {
	if opts.KeepFrac <= 0 || opts.KeepFrac > 1 {
		return nil, SketchStats{}, fmt.Errorf("tucker: KeepFrac %v outside (0, 1]", opts.KeepFrac)
	}
	nnz := x.NNZ()
	stats := SketchStats{InputNNZ: nnz}
	empty := func() *tensor.Sparse {
		out := tensor.NewSparse(x.Shape)
		out.RejectNonFinite = x.RejectNonFinite
		out.Rejected = x.Rejected
		return out
	}
	if nnz == 0 {
		stats.span(opts.Span)
		return empty(), stats, nil
	}
	totalAbs := x.AbsSum(opts.Workers)
	if totalAbs == 0 {
		stats.span(opts.Span)
		return empty(), stats, nil
	}

	// Mask pass: each entry's keep/scale decision is a pure function of
	// (seed, cell, value), so the entry range partitions freely — every
	// worker computes identical per-entry results.
	o := x.Order()
	budget := opts.KeepFrac * float64(nnz)
	keep := make([]bool, nnz)
	scaled := make([]float64, nnz)
	var saturated atomic.Int64
	var hist [8]atomic.Int64
	parallel.ForGrain(nnz, opts.Workers, parallel.AutoGrain(8*float64(o)), func(lo, hi int) {
		var sat int64
		var h [8]int64
		for e := lo; e < hi; e++ {
			v := x.Vals[e]
			p := budget * math.Abs(v) / totalAbs
			if p >= 1 {
				p = 1
				sat++
			}
			lin := uint64(x.Shape.LinearIndex(x.Idx[e*o : (e+1)*o]))
			if sketchUnit(opts.Seed, lin) < p {
				keep[e] = true
				scaled[e] = v / p
				b := int(math.Log2(1 / p))
				if b > 7 {
					b = 7
				}
				h[b]++
			}
		}
		saturated.Add(sat)
		for k, c := range h {
			if c != 0 {
				hist[k].Add(c)
			}
		}
	})
	out, derived := x.SelectScaled(keep, scaled, opts.Workers)
	stats.Kept = out.NNZ()
	stats.Saturated = int(saturated.Load())
	stats.PlansDerived = derived
	for k := range stats.ScaleHist {
		stats.ScaleHist[k] = hist[k].Load()
	}
	stats.span(opts.Span)
	return out, stats, nil
}
