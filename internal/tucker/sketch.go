package tucker

import (
	"fmt"
	"math/rand"

	"repro/internal/tensor"
)

// SketchOptions configures sketched HOSVD.
type SketchOptions struct {
	// KeepFrac is the expected fraction of cells retained (0, 1].
	KeepFrac float64
	// Rng drives the sampling; required.
	Rng *rand.Rand
}

// SketchedHOSVD runs HOSVD on a biased random sketch of the tensor, in the
// spirit of the randomized schemes the paper compares against (MACH's
// entry sampling, PARCUBE's biased sketches): each cell is kept with
// probability proportional to its magnitude (clamped to 1) and scaled by
// the inverse of that probability, making the sketch an unbiased estimator
// of the tensor. Accuracy degrades gracefully as KeepFrac shrinks and
// converges to plain HOSVD as KeepFrac → 1.
func SketchedHOSVD(x *tensor.Sparse, ranks []int, opts SketchOptions) (Decomposition, error) {
	if opts.KeepFrac <= 0 || opts.KeepFrac > 1 {
		return Decomposition{}, fmt.Errorf("tucker: KeepFrac %v outside (0, 1]", opts.KeepFrac)
	}
	if opts.Rng == nil {
		return Decomposition{}, fmt.Errorf("tucker: SketchedHOSVD requires a random source")
	}
	if opts.KeepFrac == 1 {
		return HOSVD(x, ranks), nil
	}
	sketch, err := Sketch(x, opts)
	if err != nil {
		return Decomposition{}, err
	}
	return HOSVD(sketch, ranks), nil
}

// Sketch returns the biased random sketch itself: cell i is kept with
// probability pᵢ = min(1, keepFrac·nnz·|vᵢ|/Σ|v|) and stored as vᵢ/pᵢ.
func Sketch(x *tensor.Sparse, opts SketchOptions) (*tensor.Sparse, error) {
	if opts.KeepFrac <= 0 || opts.KeepFrac > 1 {
		return nil, fmt.Errorf("tucker: KeepFrac %v outside (0, 1]", opts.KeepFrac)
	}
	if opts.Rng == nil {
		return nil, fmt.Errorf("tucker: Sketch requires a random source")
	}
	nnz := x.NNZ()
	out := tensor.NewSparse(x.Shape)
	if nnz == 0 {
		return out, nil
	}
	var totalAbs float64
	x.Each(func(idx []int, v float64) {
		if v < 0 {
			totalAbs -= v
		} else {
			totalAbs += v
		}
	})
	if totalAbs == 0 {
		return out, nil
	}
	budget := opts.KeepFrac * float64(nnz)
	x.Each(func(idx []int, v float64) {
		av := v
		if av < 0 {
			av = -av
		}
		p := budget * av / totalAbs
		if p > 1 {
			p = 1
		}
		if opts.Rng.Float64() < p {
			out.Append(idx, v/p)
		}
	})
	return out, nil
}
