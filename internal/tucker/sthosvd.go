package tucker

import (
	"context"
	"fmt"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// STHOSVD computes a Tucker decomposition by the sequentially truncated
// HOSVD: after each mode's factor is extracted, the tensor is immediately
// projected through it, so later modes factor a tensor that shrinks by
// rₙ/Iₙ at every step. For an order-N tensor this reduces the dominant
// Gram/eigen costs from N passes over the full tensor to one full pass
// plus N−1 passes over progressively smaller cores, at (provably bounded,
// and in practice negligible) accuracy cost relative to plain HOSVD.
//
// The first mode consumes the sparse input directly; the remaining modes
// operate on the dense partially-projected tensor.
//
// It runs on the package-default worker pool; see STHOSVDWorkers.
func STHOSVD(x *tensor.Sparse, ranks []int) Decomposition { return STHOSVDWorkers(x, ranks, 0) }

// STHOSVDWorkers is STHOSVD on an explicit worker count. The mode order
// is inherently sequential (each projection feeds the next mode), but the
// Gram accumulation and TTM at every step fan out across the pool, and
// every kernel preserves the serial floating-point order — bit-identical
// results for any worker count.
func STHOSVDWorkers(x *tensor.Sparse, ranks []int, workers int) Decomposition {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx API is the root of its own context tree
	dec, err := STHOSVDCtx(context.Background(), x, ranks, workers)
	if err != nil {
		// Background contexts are never cancelled; STHOSVDCtx has no
		// other error path.
		panic(fmt.Sprintf("tucker: STHOSVD on background context failed: %v", err))
	}
	return dec
}

// STHOSVDDense runs the sequentially truncated HOSVD on a dense tensor.
// It runs on the package-default worker pool; see STHOSVDDenseWorkers.
func STHOSVDDense(x *tensor.Dense, ranks []int) Decomposition {
	return STHOSVDDenseWorkers(x, ranks, 0)
}

// STHOSVDDenseWorkers is STHOSVDDense on an explicit worker count.
func STHOSVDDenseWorkers(x *tensor.Dense, ranks []int, workers int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Shape.Order()
	factors := make([]*mat.Matrix, order)
	ws := tensor.NewWorkspace()
	cur := x
	for n := 0; n < order; n++ {
		factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDenseWorkers(cur, n, workers), ranks[n])
		cur = ws.TTMWorkers(cur, n, mat.Transpose(factors[n]), workers)
	}
	return Decomposition{Core: cur.Clone(), Factors: factors, Ranks: ranks}
}
