package tucker

import (
	"repro/internal/mat"
	"repro/internal/tensor"
)

// STHOSVD computes a Tucker decomposition by the sequentially truncated
// HOSVD: after each mode's factor is extracted, the tensor is immediately
// projected through it, so later modes factor a tensor that shrinks by
// rₙ/Iₙ at every step. For an order-N tensor this reduces the dominant
// Gram/eigen costs from N passes over the full tensor to one full pass
// plus N−1 passes over progressively smaller cores, at (provably bounded,
// and in practice negligible) accuracy cost relative to plain HOSVD.
//
// The first mode consumes the sparse input directly; the remaining modes
// operate on the dense partially-projected tensor.
func STHOSVD(x *tensor.Sparse, ranks []int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Order()
	factors := make([]*mat.Matrix, order)

	// Mode 0 from the sparse tensor.
	factors[0] = tensor.LeadingModeVectors(x, 0, ranks[0])
	cur := tensor.TTMSparse(x, 0, mat.Transpose(factors[0]))

	// Remaining modes from the shrinking dense tensor.
	for n := 1; n < order; n++ {
		factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDense(cur, n), ranks[n])
		cur = tensor.TTM(cur, n, mat.Transpose(factors[n]))
	}
	return Decomposition{Core: cur, Factors: factors, Ranks: ranks}
}

// STHOSVDDense runs the sequentially truncated HOSVD on a dense tensor.
func STHOSVDDense(x *tensor.Dense, ranks []int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Shape.Order()
	factors := make([]*mat.Matrix, order)
	cur := x
	for n := 0; n < order; n++ {
		factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDense(cur, n), ranks[n])
		cur = tensor.TTM(cur, n, mat.Transpose(factors[n]))
	}
	return Decomposition{Core: cur, Factors: factors, Ranks: ranks}
}
