package tucker

import (
	"repro/internal/mat"
	"repro/internal/tensor"
)

// HOSVDReference is the paper's Algorithm 1 implemented literally: for
// each mode the tensor is explicitly matricized and the factor matrix is
// taken as the rₙ leading left singular vectors of that unfolding via a
// full SVD, then the core is recovered by the mode products.
//
// The production HOSVD never materialises the unfoldings (whose column
// count is the product of all other mode sizes) — it eigendecomposes the
// small Iₙ×Iₙ Gram matrices instead, which spans the same subspaces. This
// reference implementation exists to validate that shortcut (see the
// equivalence test) and for small-tensor debugging; it is exponentially
// more expensive and should not be used in pipelines.
func HOSVDReference(x *tensor.Dense, ranks []int) Decomposition {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Shape.Order()
	factors := make([]*mat.Matrix, order)
	for n := 0; n < order; n++ {
		unfolding := tensor.Matricize(x, n)
		svd := mat.SVD(unfolding)
		factors[n] = svd.U.FirstColumns(ranks[n])
	}
	core := tensor.MultiTTM(x, tensor.TransposeAll(factors))
	return Decomposition{Core: core, Factors: factors, Ranks: ranks}
}
