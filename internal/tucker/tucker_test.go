package tucker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
	"repro/internal/tensor"
)

func randomDense(rng *rand.Rand, shape tensor.Shape) *tensor.Dense {
	d := tensor.NewDense(shape)
	for i := range d.Data {
		d.Data[i] = 2*rng.Float64() - 1
	}
	return d
}

// lowRankTensor builds X = G ×₁U₁… with known Tucker structure.
func lowRankTensor(rng *rand.Rand, shape tensor.Shape, ranks []int) *tensor.Dense {
	core := randomDense(rng, tensor.Shape(ranks))
	us := make([]*mat.Matrix, len(shape))
	for n := range shape {
		us[n] = mat.RandomOrthonormal(rng, shape[n], ranks[n])
	}
	return tensor.TuckerReconstruct(core, us)
}

func TestClipRanks(t *testing.T) {
	got := ClipRanks(tensor.Shape{3, 5, 2}, []int{4, 4, 4})
	want := []int{3, 4, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ClipRanks = %v, want %v", got, want)
		}
	}
}

func TestClipRanksPanics(t *testing.T) {
	for _, bad := range [][]int{{1, 1}, {0, 1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ClipRanks(%v) did not panic", bad)
				}
			}()
			ClipRanks(tensor.Shape{2, 2, 2}, bad)
		}()
	}
}

func TestUniformRanks(t *testing.T) {
	r := UniformRanks(4, 7)
	if len(r) != 4 {
		t.Fatalf("len = %d", len(r))
	}
	for _, v := range r {
		if v != 7 {
			t.Fatalf("UniformRanks = %v", r)
		}
	}
}

func TestHOSVDExactRecovery(t *testing.T) {
	// A tensor with exact Tucker rank (2,2,2) must be recovered exactly at
	// those target ranks.
	rng := rand.New(rand.NewSource(100))
	x := lowRankTensor(rng, tensor.Shape{5, 6, 4}, []int{2, 2, 2})
	d := HOSVDDense(x, []int{2, 2, 2})
	if err := d.RelativeError(x); err > 1e-9 {
		t.Fatalf("exact-rank HOSVD error = %v", err)
	}
}

func TestHOSVDFullRankIsLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	x := randomDense(rng, tensor.Shape{4, 3, 5})
	d := HOSVDDense(x, []int{4, 3, 5})
	if err := d.RelativeError(x); err > 1e-9 {
		t.Fatalf("full-rank HOSVD error = %v", err)
	}
}

func TestHOSVDErrorDecreasesWithRank(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	x := randomDense(rng, tensor.Shape{6, 6, 6})
	var prev = math.Inf(1)
	for _, r := range []int{1, 2, 4, 6} {
		err := HOSVDDense(x, UniformRanks(3, r)).RelativeError(x)
		if err > prev+1e-12 {
			t.Fatalf("error increased with rank: %v -> %v at r=%d", prev, err, r)
		}
		prev = err
	}
	if prev > 1e-9 {
		t.Fatalf("full-rank error = %v, want ~0", prev)
	}
}

func TestHOSVDSparseMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	x := randomDense(rng, tensor.Shape{4, 5, 3})
	// Sparsify ~50% of entries.
	for i := range x.Data {
		if rng.Float64() < 0.5 {
			x.Data[i] = 0
		}
	}
	sp := x.ToSparse(0)
	ranks := []int{2, 3, 2}
	ds := HOSVD(sp, ranks)
	dd := HOSVDDense(x, ranks)
	// Factor subspaces may differ in sign; compare reconstructions.
	if !ds.Reconstruct().Equal(dd.Reconstruct(), 1e-8) {
		t.Fatal("sparse and dense HOSVD reconstructions differ")
	}
}

func TestHOSVDFactorShapesAndOrthonormality(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	x := randomDense(rng, tensor.Shape{5, 4, 6}).ToSparse(0)
	d := HOSVD(x, []int{3, 2, 4})
	wantRows := []int{5, 4, 6}
	wantCols := []int{3, 2, 4}
	for n, f := range d.Factors {
		if f.Rows != wantRows[n] || f.Cols != wantCols[n] {
			t.Fatalf("factor %d dims %d×%d", n, f.Rows, f.Cols)
		}
		if !mat.IsOrthonormalCols(f, 1e-9) {
			t.Fatalf("factor %d not orthonormal", n)
		}
	}
	if !d.Core.Shape.Equal(tensor.Shape{3, 2, 4}) {
		t.Fatalf("core shape %v", d.Core.Shape)
	}
}

func TestHOSVDRankClipping(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	x := randomDense(rng, tensor.Shape{3, 3}).ToSparse(0)
	d := HOSVD(x, []int{10, 10})
	if d.Ranks[0] != 3 || d.Ranks[1] != 3 {
		t.Fatalf("Ranks = %v, want clipped to [3 3]", d.Ranks)
	}
	if err := d.RelativeError(x.ToDense()); err > 1e-9 {
		t.Fatalf("clipped full-rank error = %v", err)
	}
}

func TestHOSVDProjectionOptimalityPerMode(t *testing.T) {
	// HOSVD factors are the leading singular subspaces, so projecting onto
	// them must capture at least as much energy as any random subspace of
	// the same dimension.
	rng := rand.New(rand.NewSource(106))
	x := randomDense(rng, tensor.Shape{6, 5, 4})
	d := HOSVDDense(x, []int{2, 2, 2})
	hosvdEnergy := d.Core.Norm()
	for trial := 0; trial < 5; trial++ {
		us := make([]*mat.Matrix, 3)
		for n, dim := range []int{6, 5, 4} {
			us[n] = mat.RandomOrthonormal(rng, dim, 2)
		}
		randEnergy := tensor.MultiTTM(x, tensor.TransposeAll(us)).Norm()
		if randEnergy > hosvdEnergy+1e-9 {
			t.Fatalf("random subspace beat HOSVD: %v > %v", randEnergy, hosvdEnergy)
		}
	}
}

func TestCoreFromFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	x := randomDense(rng, tensor.Shape{4, 4, 4}).ToSparse(0)
	d := HOSVD(x, []int{2, 2, 2})
	core := CoreFromFactors(x, d.Factors)
	if !core.Equal(d.Core, 1e-10) {
		t.Fatal("CoreFromFactors disagrees with HOSVD core")
	}
}

func TestHOSVDEmptyTensor(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{3, 3, 3})
	d := HOSVD(x, []int{2, 2, 2})
	if d.Core.Norm() != 0 {
		t.Fatal("empty tensor core should be zero")
	}
	if d.Reconstruct().Norm() != 0 {
		t.Fatal("empty tensor reconstruction should be zero")
	}
}

func TestGramRouteMatchesReferenceHOSVD(t *testing.T) {
	// The production HOSVD (Gram eigendecomposition, never materialising
	// the unfoldings) must span the same subspaces as the paper-literal
	// Algorithm 1 (full SVD of each explicit matricization): identical
	// reconstructions and identical per-mode projectors.
	rng := rand.New(rand.NewSource(148))
	for trial := 0; trial < 4; trial++ {
		x := randomDense(rng, tensor.Shape{5, 4, 6})
		ranks := []int{3, 2, 4}
		ref := HOSVDReference(x, ranks)
		prod := HOSVDDense(x, ranks)
		if !ref.Reconstruct().Equal(prod.Reconstruct(), 1e-8) {
			t.Fatalf("trial %d: reconstructions differ between Gram route and Algorithm 1", trial)
		}
		for n := range ranks {
			pRef := mat.MulTransB(ref.Factors[n], ref.Factors[n])
			pProd := mat.MulTransB(prod.Factors[n], prod.Factors[n])
			if !pRef.Equal(pProd, 1e-7) {
				t.Fatalf("trial %d: mode-%d subspaces differ", trial, n)
			}
		}
	}
}

func TestReferenceHOSVDExactRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	x := lowRankTensor(rng, tensor.Shape{4, 5, 3}, []int{2, 2, 2})
	d := HOSVDReference(x, []int{2, 2, 2})
	if err := d.RelativeError(x); err > 1e-9 {
		t.Fatalf("reference HOSVD exact-rank error = %v", err)
	}
}
