package tucker

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

func randomSparseTensor(rng *rand.Rand, shape tensor.Shape, nnz int) *tensor.Sparse {
	total := shape.NumElements()
	if nnz > total {
		nnz = total
	}
	seen := map[int]bool{}
	s := tensor.NewSparse(shape)
	idx := make([]int, shape.Order())
	for len(seen) < nnz {
		lin := rng.Intn(total)
		if seen[lin] {
			continue
		}
		seen[lin] = true
		shape.MultiIndex(lin, idx)
		s.Append(idx, rng.NormFloat64())
	}
	return s
}

// countingCtx flips to cancelled after its Err method has been consulted
// `after` times — a deterministic probe for WHERE the sweep loop polls.
type countingCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *countingCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func (c *countingCtx) polls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

func TestHOOICtxMatchesHOOI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomSparseTensor(rng, tensor.Shape{6, 5, 4}, 60)
	opts := HOOIOptions{MaxIterations: 4, Workers: 2}
	want := HOOI(x, []int{3, 3, 2}, opts)
	got, err := HOOICtx(context.Background(), x, []int{3, 3, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Core.Data {
		if got.Core.Data[i] != want.Core.Data[i] {
			t.Fatalf("core differs at %d: %v vs %v", i, got.Core.Data[i], want.Core.Data[i])
		}
	}
	for n := range want.Factors {
		for i := range want.Factors[n].Data {
			if got.Factors[n].Data[i] != want.Factors[n].Data[i] {
				t.Fatalf("factor %d differs at %d", n, i)
			}
		}
	}
}

func TestHOOICtxCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(8))
	x := randomSparseTensor(rng, tensor.Shape{5, 4, 3}, 30)
	dec, err := HOOICtx(ctx, x, []int{2, 2, 2}, HOOIOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if dec.Core != nil || dec.Factors != nil {
		t.Fatalf("cancelled HOOI leaked partial output: %+v", dec)
	}
}

func TestHOOICtxStopsBetweenModeUpdatesNotMidKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x := randomSparseTensor(rng, tensor.Shape{6, 5, 4}, 60)
	// Allow the initial poll plus the first sweep's first mode update,
	// then flip to cancelled: HOOICtx must return Canceled — proving it
	// re-polls at the next mode boundary rather than only up front.
	cctx := &countingCtx{Context: context.Background(), after: 2}
	_, err := HOOICtx(cctx, x, []int{3, 3, 2}, HOOIOptions{MaxIterations: 5, Workers: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled from a mid-sweep flip, got %v", err)
	}
	if cctx.polls() < 3 {
		t.Fatalf("HOOICtx consulted the context only %d times; it is not polling between mode updates", cctx.polls())
	}
}

func TestSTHOSVDCtxMatchesSTHOSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randomSparseTensor(rng, tensor.Shape{6, 5, 4}, 60)
	want := STHOSVDWorkers(x, []int{3, 3, 2}, 2)
	got, err := STHOSVDCtx(context.Background(), x, []int{3, 3, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Core.Data {
		if got.Core.Data[i] != want.Core.Data[i] {
			t.Fatalf("core differs at %d", i)
		}
	}
}

func TestSTHOSVDCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rng := rand.New(rand.NewSource(11))
	x := randomSparseTensor(rng, tensor.Shape{5, 4, 3}, 30)
	if _, err := STHOSVDCtx(ctx, x, []int{2, 2, 2}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestHOOICtxDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randomSparseTensor(rng, tensor.Shape{6, 5, 4}, 60)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := HOOICtx(ctx, x, []int{3, 3, 2}, HOOIOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
}
