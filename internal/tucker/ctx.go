package tucker

import (
	"context"
	"fmt"

	"repro/internal/mat"
	"repro/internal/tensor"
)

// HOOICtx is HOOI with cooperative cancellation. The context is polled
// between whole mode updates and between sweeps — never inside a kernel —
// so a cancelled HOOI stops at a consistent point: any kernel it started
// has finished, all pool workers are joined, and no partially written
// factor escapes (the Decomposition returned with a non-nil error is the
// zero value). An un-cancelled HOOICtx is bit-identical to HOOI.
func HOOICtx(ctx context.Context, x *tensor.Sparse, ranks []int, opts HOOIOptions) (Decomposition, error) {
	opts = opts.normalize()
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Order()
	w := opts.Workers

	if err := ctx.Err(); err != nil {
		return Decomposition{}, err
	}

	// Initialise from HOSVD.
	ispan := opts.Span.Start("init")
	dec := HOSVDSpan(x, ranks, w, ispan)
	ispan.Finish()
	factors := dec.Factors

	// All TTM chains inside the sweeps run on one reusable workspace: the
	// two ping-pong buffers are sized on the first sweep and reused by
	// every later mode update and energy check, so steady-state sweeps
	// allocate nothing in the dense TTM chain. Workspace results alias the
	// buffers; the returned core is cloned out below.
	ws := tensor.NewWorkspace()
	ms := make([]*mat.Matrix, order)

	prevEnergy := dec.Core.Norm()
	sweeps := 0
	for iter := 0; iter < opts.MaxIterations; iter++ {
		// The per-sweep span is structural: whether a sweep runs depends
		// only on the data and the tolerance (never on the worker count),
		// so the sweep children and the final "sweeps" counter are
		// deterministic.
		sw := opts.Span.Start(fmt.Sprintf("sweep%d", iter))
		for n := 0; n < order; n++ {
			if err := ctx.Err(); err != nil {
				return Decomposition{}, err
			}
			// Project through every factor except mode n.
			for k := 0; k < order; k++ {
				if k != n {
					ms[k] = mat.Transpose(factors[k])
				} else {
					ms[k] = nil
				}
			}
			y := ws.MultiTTMSparseWorkers(x, ms, w)
			factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDenseWorkers(y, n, w), ranks[n])
		}
		if err := ctx.Err(); err != nil {
			return Decomposition{}, err
		}
		core := ws.MultiTTMSparseWorkers(x, tensor.TransposeAll(factors), w)
		energy := core.Norm()
		sw.Finish()
		sweeps = iter + 1
		if energy-prevEnergy <= opts.Tolerance*(prevEnergy+1e-300) {
			opts.Span.Set("sweeps", int64(sweeps))
			return Decomposition{Core: core.Clone(), Factors: factors, Ranks: ranks}, nil
		}
		prevEnergy = energy
	}
	opts.Span.Set("sweeps", int64(sweeps))
	core := ws.MultiTTMSparseWorkers(x, tensor.TransposeAll(factors), w)
	return Decomposition{Core: core.Clone(), Factors: factors, Ranks: ranks}, nil
}

// STHOSVDCtx is STHOSVDWorkers with cooperative cancellation, polled
// between the sequential mode steps (each step's Gram/eigen/TTM kernels
// always run to completion). An un-cancelled STHOSVDCtx is bit-identical
// to STHOSVDWorkers.
func STHOSVDCtx(ctx context.Context, x *tensor.Sparse, ranks []int, workers int) (Decomposition, error) {
	ranks = ClipRanks(x.Shape, ranks)
	order := x.Order()
	factors := make([]*mat.Matrix, order)

	if err := ctx.Err(); err != nil {
		return Decomposition{}, err
	}

	// The projection chain ping-pongs on a reusable workspace; the final
	// core is cloned out because workspace results alias its buffers.
	ws := tensor.NewWorkspace()

	// Mode 0 from the sparse tensor.
	factors[0] = tensor.LeadingModeVectorsWorkers(x, 0, ranks[0], workers)
	cur := ws.TTMSparseWorkers(x, 0, mat.Transpose(factors[0]), workers)

	// Remaining modes from the shrinking dense tensor.
	for n := 1; n < order; n++ {
		if err := ctx.Err(); err != nil {
			return Decomposition{}, err
		}
		factors[n] = mat.LeadingEigenvectors(tensor.ModeGramDenseWorkers(cur, n, workers), ranks[n])
		cur = ws.TTMWorkers(cur, n, mat.Transpose(factors[n]), workers)
	}
	return Decomposition{Core: cur.Clone(), Factors: factors, Ranks: ranks}, nil
}
