package tucker

// Regression tests: the decomposition drivers must produce BIT-IDENTICAL
// results for workers=1 and workers=N, because every parallel kernel they
// call partitions the output index space and preserves the serial
// floating-point accumulation order.

import (
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/tensor"
)

// seededSparse builds a deterministic random sparse tensor big enough to
// cross the parallel kernels' serial-fallback thresholds.
func seededSparse(shape tensor.Shape, nnz int, seed int64) *tensor.Sparse {
	rng := rand.New(rand.NewSource(seed))
	s := tensor.NewSparse(shape)
	idx := make([]int, shape.Order())
	for e := 0; e < nnz; e++ {
		for k, d := range shape {
			idx[k] = rng.Intn(d)
		}
		s.Append(idx, rng.NormFloat64())
	}
	return s
}

// decompEqualBits reports whether two decompositions are bit-identical.
func decompEqualBits(t *testing.T, name string, a, b Decomposition) {
	t.Helper()
	if !a.Core.Shape.Equal(b.Core.Shape) {
		t.Fatalf("%s: core shape %v vs %v", name, a.Core.Shape, b.Core.Shape)
	}
	for i, v := range a.Core.Data {
		if v != b.Core.Data[i] {
			t.Fatalf("%s: core element %d differs: %v vs %v", name, i, v, b.Core.Data[i])
		}
	}
	if len(a.Factors) != len(b.Factors) {
		t.Fatalf("%s: %d vs %d factors", name, len(a.Factors), len(b.Factors))
	}
	for n, u := range a.Factors {
		w := b.Factors[n]
		if u.Rows != w.Rows || u.Cols != w.Cols {
			t.Fatalf("%s: factor %d shape %dx%d vs %dx%d", name, n, u.Rows, u.Cols, w.Rows, w.Cols)
		}
		for i, v := range u.Data {
			if v != w.Data[i] {
				t.Fatalf("%s: factor %d element %d differs: %v vs %v", name, n, i, v, w.Data[i])
			}
		}
	}
	for n, r := range a.Ranks {
		if b.Ranks[n] != r {
			t.Fatalf("%s: ranks %v vs %v", name, a.Ranks, b.Ranks)
		}
	}
}

var tuckerTestWorkers = []int{2, 4, 8}

func TestHOSVDWorkersBitStable(t *testing.T) {
	x := seededSparse(tensor.Shape{11, 10, 9}, 6000, 1)
	ranks := []int{4, 3, 5}
	want := HOSVDWorkers(x, ranks, 1)
	for _, w := range tuckerTestWorkers {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			decompEqualBits(t, "HOSVD", want, HOSVDWorkers(x, ranks, w))
		})
	}
	// The default entry point must agree too (whatever the default pool size).
	decompEqualBits(t, "HOSVD-default", want, HOSVD(x, ranks))
}

func TestHOSVDDenseWorkersBitStable(t *testing.T) {
	x := seededSparse(tensor.Shape{9, 8, 7}, 500, 2).ToDense()
	ranks := []int{3, 4, 2}
	want := HOSVDDenseWorkers(x, ranks, 1)
	for _, w := range tuckerTestWorkers {
		decompEqualBits(t, "HOSVDDense w="+strconv.Itoa(w), want, HOSVDDenseWorkers(x, ranks, w))
	}
}

func TestSTHOSVDWorkersBitStable(t *testing.T) {
	x := seededSparse(tensor.Shape{10, 9, 8}, 6000, 3)
	ranks := []int{3, 4, 3}
	want := STHOSVDWorkers(x, ranks, 1)
	for _, w := range tuckerTestWorkers {
		decompEqualBits(t, "STHOSVD w="+strconv.Itoa(w), want, STHOSVDWorkers(x, ranks, w))
	}
}

func TestSTHOSVDDenseWorkersBitStable(t *testing.T) {
	x := seededSparse(tensor.Shape{8, 9, 10}, 400, 4).ToDense()
	ranks := []int{4, 3, 4}
	want := STHOSVDDenseWorkers(x, ranks, 1)
	for _, w := range tuckerTestWorkers {
		decompEqualBits(t, "STHOSVDDense w="+strconv.Itoa(w), want, STHOSVDDenseWorkers(x, ranks, w))
	}
}

func TestHOOIWorkersBitStable(t *testing.T) {
	x := seededSparse(tensor.Shape{10, 9, 8}, 6000, 5)
	ranks := []int{3, 3, 3}
	want := HOOI(x, ranks, HOOIOptions{MaxIterations: 4, Workers: 1})
	for _, w := range tuckerTestWorkers {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			got := HOOI(x, ranks, HOOIOptions{MaxIterations: 4, Workers: w})
			decompEqualBits(t, "HOOI", want, got)
		})
	}
}

func TestHOOIDenseWorkersBitStable(t *testing.T) {
	x := seededSparse(tensor.Shape{8, 8, 8}, 400, 6).ToDense()
	ranks := []int{3, 3, 3}
	want := HOOIDense(x, ranks, HOOIOptions{MaxIterations: 3, Workers: 1})
	for _, w := range tuckerTestWorkers {
		decompEqualBits(t, "HOOIDense w="+strconv.Itoa(w), want,
			HOOIDense(x, ranks, HOOIOptions{MaxIterations: 3, Workers: w}))
	}
}
