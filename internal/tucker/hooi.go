package tucker

import (
	"context"
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// HOOIOptions configures higher-order orthogonal iteration.
type HOOIOptions struct {
	// MaxIterations bounds the alternating sweeps (default 10).
	MaxIterations int
	// Tolerance stops iteration when the captured core energy improves by
	// less than this relative amount between sweeps (default 1e-8).
	Tolerance float64
	// Workers is the worker-pool size for the TTM/Gram kernels inside each
	// sweep (and the HOSVD initialisation). 0 selects the parallel package
	// default (GOMAXPROCS); 1 forces serial execution. The alternating mode
	// updates themselves stay sequential — each mode re-optimises against
	// the latest factors of the others (Gauss–Seidel), which is what gives
	// HOOI its monotone energy guarantee — but every kernel inside a sweep
	// fans out. Results are bit-identical for any worker count.
	Workers int
	// Span, when non-nil, is the decompose stage span: HOOICtx opens one
	// child for the HOSVD initialisation (with per-mode sub-spans) and one
	// per alternating sweep, and records the executed sweep count as a
	// deterministic counter. A nil Span costs one nil check per site.
	Span *obs.Span
}

func (o HOOIOptions) normalize() HOOIOptions {
	if o.MaxIterations == 0 {
		o.MaxIterations = 10
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-8
	}
	return o
}

// HOOI computes a Tucker decomposition by higher-order orthogonal
// iteration: starting from the HOSVD factors, it alternately re-optimises
// each mode's factor as the leading subspace of the tensor projected
// through all other factors. HOOI's reconstruction error is never worse
// than HOSVD's (it monotonically increases the captured core energy) and
// is often better at aggressive rank truncations.
//
// HOSVD remains the building block the paper's M2TD uses; HOOI is provided
// as the natural quality upgrade for standalone Tucker decompositions of
// ensemble tensors.
//
// HOOI is the infallible entry point; cancellable decompositions use
// HOOICtx (bit-identical when not cancelled).
func HOOI(x *tensor.Sparse, ranks []int, opts HOOIOptions) Decomposition {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx API is the root of its own context tree
	dec, err := HOOICtx(context.Background(), x, ranks, opts)
	if err != nil {
		// Background contexts are never cancelled; HOOICtx has no other
		// error path.
		panic(fmt.Sprintf("tucker: HOOI on background context failed: %v", err))
	}
	return dec
}

// HOOIDense runs HOOI on a dense tensor.
func HOOIDense(x *tensor.Dense, ranks []int, opts HOOIOptions) Decomposition {
	sp := x.ToSparse(0)
	if sp.NNZ() == 0 {
		return HOSVDDenseWorkers(x, ranks, opts.Workers)
	}
	return HOOI(sp, ranks, opts)
}

// FitOf returns the Tucker fit 1 − ‖X − X̂‖F/‖X‖F of a decomposition
// against the sparse tensor it was computed from, using the identity
// ‖X − X̂‖² = ‖X‖² − ‖G‖² (valid for orthonormal factors).
func FitOf(d Decomposition, x *tensor.Sparse) (float64, error) {
	for n, f := range d.Factors {
		if !mat.IsOrthonormalCols(f, 1e-6) {
			return 0, fmt.Errorf("tucker: factor %d is not orthonormal; FitOf requires orthonormal factors", n)
		}
	}
	xn := x.Norm()
	if xn == 0 {
		return 1, nil
	}
	gn := d.Core.Norm()
	resid := xn*xn - gn*gn
	if resid < 0 {
		resid = 0
	}
	return 1 - math.Sqrt(resid)/xn, nil
}
