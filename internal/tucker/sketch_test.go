package tucker

import (
	"math"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/parallel"
	"repro/internal/tensor"
)

func TestSketchValidation(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{2, 2})
	for _, frac := range []float64{0, -0.5, 1.5, 2} {
		if _, _, err := Sketch(x, SketchOptions{KeepFrac: frac, Seed: 1}); err == nil {
			t.Fatalf("KeepFrac %v accepted", frac)
		}
		if _, _, err := SketchedHOSVD(x, []int{1, 1}, SketchOptions{KeepFrac: frac, Seed: 1}); err == nil {
			t.Fatalf("SketchedHOSVD with KeepFrac %v accepted", frac)
		}
		if _, _, err := SketchedHOOI(x, []int{1, 1}, SketchOptions{KeepFrac: frac, Seed: 1}, HOOIOptions{}); err == nil {
			t.Fatalf("SketchedHOOI with KeepFrac %v accepted", frac)
		}
	}
}

func TestSketchEmptyAndZero(t *testing.T) {
	empty, stats, err := Sketch(tensor.NewSparse(tensor.Shape{3, 3}), SketchOptions{KeepFrac: 0.5, Seed: 2})
	if err != nil || empty.NNZ() != 0 || stats.Kept != 0 {
		t.Fatalf("empty sketch: %v, %d cells, stats %+v", err, empty.NNZ(), stats)
	}
	zeros := tensor.NewSparse(tensor.Shape{2})
	zeros.Append([]int{0}, 0)
	sk, stats, err := Sketch(zeros, SketchOptions{KeepFrac: 0.5, Seed: 2})
	if err != nil || sk.NNZ() != 0 {
		t.Fatalf("all-zero sketch: %v, %d cells", err, sk.NNZ())
	}
	if stats.InputNNZ != 1 || stats.Kept != 0 {
		t.Fatalf("all-zero stats %+v", stats)
	}
}

func TestSketchIsPureFunctionOfSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomDense(rng, tensor.Shape{10, 10, 10}).ToSparse(0)
	a, astats, err := Sketch(x, SketchOptions{KeepFrac: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, bstats, err := Sketch(x, SketchOptions{KeepFrac: 0.3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !sparseBitsEqual(a, b) || astats != bstats {
		t.Fatal("same seed produced different sketches")
	}
	c, _, err := Sketch(x, SketchOptions{KeepFrac: 0.3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if sparseBitsEqual(a, c) {
		t.Fatal("different seeds produced identical sketches (hash not keyed on seed?)")
	}
}

func TestSketchSizeTracksKeepFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomDense(rng, tensor.Shape{10, 10, 10}).ToSparse(0)
	sk, stats, err := Sketch(x, SketchOptions{KeepFrac: 0.3, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(sk.NNZ()) / float64(x.NNZ())
	if got < 0.15 || got > 0.5 {
		t.Fatalf("kept fraction %v, want ≈0.3", got)
	}
	if stats.InputNNZ != x.NNZ() || stats.Kept != sk.NNZ() || stats.Dropped() != x.NNZ()-sk.NNZ() {
		t.Fatalf("stats %+v inconsistent with sketch of %d/%d", stats, sk.NNZ(), x.NNZ())
	}
	var hist int64
	for _, c := range stats.ScaleHist {
		hist += c
	}
	if hist != int64(stats.Kept) {
		t.Fatalf("scale histogram sums to %d, want kept=%d", hist, stats.Kept)
	}
}

func TestSketchIsUnbiased(t *testing.T) {
	// Averaging many independent sketches (one per SEED — the estimator's
	// randomness is the hash seed now, not a generator state) approaches
	// the original tensor.
	rng := rand.New(rand.NewSource(4))
	x := randomDense(rng, tensor.Shape{4, 4})
	for i := range x.Data {
		x.Data[i] = math.Abs(x.Data[i]) + 0.1 // keep values bounded away from 0
	}
	sp := x.ToSparse(0)
	sum := tensor.NewDense(x.Shape)
	const trials = 3000
	for seed := int64(1); seed <= trials; seed++ {
		sk, _, err := Sketch(sp, SketchOptions{KeepFrac: 0.5, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		sum = sum.Add(sk.ToDense())
	}
	mean := sum.Scale(1.0 / trials)
	relErr := mean.Sub(x).Norm() / x.Norm()
	if relErr > 0.05 {
		t.Fatalf("sketch estimator bias: relative error %v", relErr)
	}
}

func TestSketchBitStableAcrossWorkers(t *testing.T) {
	// The sketch must be the identical tensor for any worker count and
	// fan-out cap (the faults job sweeps this under -race at several
	// M2TD_WORKERS values). 9000 entries push both the AbsSum grid and the
	// selection grid into multi-strip territory.
	prev := parallel.SetFanoutCap(8)
	defer parallel.SetFanoutCap(prev)
	rng := rand.New(rand.NewSource(9))
	x := randomDense(rng, tensor.Shape{12, 10, 8, 10}).ToSparse(0)
	opts := SketchOptions{KeepFrac: 0.2, Seed: 11}
	opts.Workers = 1
	want, wstats, err := Sketch(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 8} {
		t.Run("w="+strconv.Itoa(w), func(t *testing.T) {
			opts.Workers = w
			got, gstats, err := Sketch(x, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sparseBitsEqual(want, got) {
				t.Fatalf("sketch workers=%d differs from workers=1", w)
			}
			if wstats != gstats {
				t.Fatalf("stats workers=%d %+v differ from workers=1 %+v", w, gstats, wstats)
			}
		})
	}
}

func TestSketchInheritsPlansAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randomDense(rng, tensor.Shape{12, 10, 8, 10}).ToSparse(0)
	// Decompose once so every mode plan is cached on the source, then
	// sketch: all plans must be derived, and the sketched decomposition
	// must match a plan-less sketch's bits exactly.
	HOSVD(x, UniformRanks(4, 4))
	sk, stats, err := Sketch(x, SketchOptions{KeepFrac: 0.3, Seed: 5, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.PlansDerived != x.Order() {
		t.Fatalf("derived %d plans, want %d", stats.PlansDerived, x.Order())
	}
	for n := 0; n < sk.Order(); n++ {
		if !sk.HasPlanMode(n) {
			t.Fatalf("mode %d plan not installed on the sketch", n)
		}
	}
	fresh, freshStats, err := Sketch(x.Clone(), SketchOptions{KeepFrac: 0.3, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if freshStats.PlansDerived != 0 {
		t.Fatalf("clone-source sketch derived %d plans, want 0", freshStats.PlansDerived)
	}
	a := HOSVD(sk, UniformRanks(4, 4))
	b := HOSVD(fresh, UniformRanks(4, 4))
	if !decompBitsEqual(a, b) {
		t.Fatal("decomposition through derived plans differs from compiled plans")
	}
}

func TestSketchInheritsQuarantine(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{4, 4})
	x.RejectNonFinite = true
	x.Append([]int{0, 0}, math.Inf(1)) // quarantined at ingest
	x.Append([]int{1, 2}, 5)
	x.Append([]int{3, 3}, -2)
	if x.Rejected != 1 {
		t.Fatalf("fixture rejected=%d", x.Rejected)
	}
	sk, _, err := Sketch(x, SketchOptions{KeepFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !sk.RejectNonFinite || sk.Rejected != 1 {
		t.Fatalf("sketch dropped quarantine state: RejectNonFinite=%v Rejected=%d", sk.RejectNonFinite, sk.Rejected)
	}
}

func TestSketchedHOSVDConvergesToHOSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomDense(rng, tensor.Shape{8, 8, 8})
	sp := x.ToSparse(0)
	ranks := UniformRanks(3, 3)
	exactDec := HOSVD(sp, ranks)
	exact := exactDec.RelativeError(x)

	full, stats, err := SketchedHOSVD(sp, ranks, SketchOptions{KeepFrac: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// KeepFrac = 1 must be plain HOSVD bit for bit, not merely close.
	if !decompBitsEqual(full, exactDec) {
		t.Fatal("KeepFrac=1 sketch is not bit-identical to plain HOSVD")
	}
	if stats.Kept != sp.NNZ() || stats.Dropped() != 0 {
		t.Fatalf("KeepFrac=1 stats %+v", stats)
	}

	// Heavier sketches should not do much worse than light ones on
	// average; just sanity-check the error ordering loosely.
	light, _, err := SketchedHOSVD(sp, ranks, SketchOptions{KeepFrac: 0.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	heavy, _, err := SketchedHOSVD(sp, ranks, SketchOptions{KeepFrac: 0.8, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.RelativeError(x) > light.RelativeError(x)+0.3 {
		t.Fatalf("heavy sketch error %v much worse than light %v", heavy.RelativeError(x), light.RelativeError(x))
	}
	if light.RelativeError(x) < exact-1e-9 {
		t.Fatal("sketched error below exact HOSVD error (impossible for this tensor)")
	}
}

func TestSketchedHOOI(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randomDense(rng, tensor.Shape{8, 8, 8})
	sp := x.ToSparse(0)
	ranks := UniformRanks(3, 3)
	full, _, err := SketchedHOOI(sp, ranks, SketchOptions{KeepFrac: 1, Seed: 2}, HOOIOptions{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !decompBitsEqual(full, HOOI(sp, ranks, HOOIOptions{MaxIterations: 2})) {
		t.Fatal("KeepFrac=1 SketchedHOOI is not bit-identical to plain HOOI")
	}
	dec, stats, err := SketchedHOOI(sp, ranks, SketchOptions{KeepFrac: 0.5, Seed: 2}, HOOIOptions{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Kept == 0 || stats.Kept >= stats.InputNNZ {
		t.Fatalf("stats %+v", stats)
	}
	if e := dec.RelativeError(x); math.IsNaN(e) || e > 1.5 {
		t.Fatalf("sketched HOOI error %v", e)
	}
}

// sparseBitsEqual reports exact equality of shape, indices, and value bits.
func sparseBitsEqual(a, b *tensor.Sparse) bool {
	if a.NNZ() != b.NNZ() || len(a.Idx) != len(b.Idx) {
		return false
	}
	for i := range a.Idx {
		if a.Idx[i] != b.Idx[i] {
			return false
		}
	}
	for i := range a.Vals {
		if math.Float64bits(a.Vals[i]) != math.Float64bits(b.Vals[i]) {
			return false
		}
	}
	return true
}

// decompBitsEqual reports exact equality of two decompositions' cores and
// factors.
func decompBitsEqual(a, b Decomposition) bool {
	if len(a.Factors) != len(b.Factors) || len(a.Core.Data) != len(b.Core.Data) {
		return false
	}
	for i := range a.Core.Data {
		if math.Float64bits(a.Core.Data[i]) != math.Float64bits(b.Core.Data[i]) {
			return false
		}
	}
	for n := range a.Factors {
		fa, fb := a.Factors[n], b.Factors[n]
		if fa.Rows != fb.Rows || fa.Cols != fb.Cols {
			return false
		}
		for i := range fa.Data {
			if math.Float64bits(fa.Data[i]) != math.Float64bits(fb.Data[i]) {
				return false
			}
		}
	}
	return true
}
