package tucker

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestSketchValidation(t *testing.T) {
	x := tensor.NewSparse(tensor.Shape{2, 2})
	rng := rand.New(rand.NewSource(1))
	if _, err := Sketch(x, SketchOptions{KeepFrac: 0, Rng: rng}); err == nil {
		t.Fatal("KeepFrac 0 accepted")
	}
	if _, err := Sketch(x, SketchOptions{KeepFrac: 2, Rng: rng}); err == nil {
		t.Fatal("KeepFrac 2 accepted")
	}
	if _, err := Sketch(x, SketchOptions{KeepFrac: 0.5}); err == nil {
		t.Fatal("nil Rng accepted")
	}
	if _, err := SketchedHOSVD(x, []int{1, 1}, SketchOptions{KeepFrac: 0}); err == nil {
		t.Fatal("SketchedHOSVD with bad options accepted")
	}
}

func TestSketchEmptyAndZero(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	empty, err := Sketch(tensor.NewSparse(tensor.Shape{3, 3}), SketchOptions{KeepFrac: 0.5, Rng: rng})
	if err != nil || empty.NNZ() != 0 {
		t.Fatalf("empty sketch: %v, %d cells", err, empty.NNZ())
	}
	zeros := tensor.NewSparse(tensor.Shape{2})
	zeros.Append([]int{0}, 0)
	sk, err := Sketch(zeros, SketchOptions{KeepFrac: 0.5, Rng: rng})
	if err != nil || sk.NNZ() != 0 {
		t.Fatalf("all-zero sketch: %v, %d cells", err, sk.NNZ())
	}
}

func TestSketchSizeTracksKeepFrac(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomDense(rng, tensor.Shape{10, 10, 10}).ToSparse(0)
	sk, err := Sketch(x, SketchOptions{KeepFrac: 0.3, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	got := float64(sk.NNZ()) / float64(x.NNZ())
	if got < 0.15 || got > 0.5 {
		t.Fatalf("kept fraction %v, want ≈0.3", got)
	}
}

func TestSketchIsUnbiased(t *testing.T) {
	// Averaging many independent sketches approaches the original tensor.
	rng := rand.New(rand.NewSource(4))
	x := randomDense(rng, tensor.Shape{4, 4})
	for i := range x.Data {
		x.Data[i] = math.Abs(x.Data[i]) + 0.1 // keep values bounded away from 0
	}
	sp := x.ToSparse(0)
	sum := tensor.NewDense(x.Shape)
	const trials = 3000
	for i := 0; i < trials; i++ {
		sk, err := Sketch(sp, SketchOptions{KeepFrac: 0.5, Rng: rng})
		if err != nil {
			t.Fatal(err)
		}
		sum = sum.Add(sk.ToDense())
	}
	mean := sum.Scale(1.0 / trials)
	relErr := mean.Sub(x).Norm() / x.Norm()
	if relErr > 0.05 {
		t.Fatalf("sketch estimator bias: relative error %v", relErr)
	}
}

func TestSketchedHOSVDConvergesToHOSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomDense(rng, tensor.Shape{8, 8, 8})
	sp := x.ToSparse(0)
	ranks := UniformRanks(3, 3)
	exact := HOSVD(sp, ranks).RelativeError(x)

	full, err := SketchedHOSVD(sp, ranks, SketchOptions{KeepFrac: 1, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full.RelativeError(x)-exact) > 1e-12 {
		t.Fatal("KeepFrac=1 sketch differs from plain HOSVD")
	}

	// Heavier sketches should not do much worse than light ones on
	// average; just sanity-check the error ordering loosely.
	light, err := SketchedHOSVD(sp, ranks, SketchOptions{KeepFrac: 0.2, Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := SketchedHOSVD(sp, ranks, SketchOptions{KeepFrac: 0.8, Rng: rand.New(rand.NewSource(6))})
	if err != nil {
		t.Fatal(err)
	}
	if heavy.RelativeError(x) > light.RelativeError(x)+0.3 {
		t.Fatalf("heavy sketch error %v much worse than light %v", heavy.RelativeError(x), light.RelativeError(x))
	}
	if light.RelativeError(x) < exact-1e-9 {
		t.Fatal("sketched error below exact HOSVD error (impossible for this tensor)")
	}
}
