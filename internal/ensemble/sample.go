package ensemble

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Sim identifies one simulation by its parameter grid indices.
type Sim []int

// key returns a canonical map key for deduplication.
func (m Sim) key(res int) int {
	k := 0
	for _, i := range m {
		k = k*res + i
	}
	return k
}

// RandomSample selects budget distinct simulations uniformly at random
// from the full parameter space — the paper's RANDOM scheme and the
// baseline every other scheme is compared against.
func RandomSample(s *Space, budget int, rng *rand.Rand) []Sim {
	total := s.TotalSims()
	if budget > total {
		budget = total
	}
	nParams := s.NumParams()
	seen := make(map[int]bool, budget)
	sims := make([]Sim, 0, budget)
	for len(sims) < budget {
		idx := make(Sim, nParams)
		for k := range idx {
			idx[k] = rng.Intn(s.Res)
		}
		k := idx.key(s.Res)
		if seen[k] {
			continue
		}
		seen[k] = true
		sims = append(sims, idx)
	}
	return sims
}

// GridSample selects simulations on a regular sub-grid: the largest g with
// g^N ≤ budget evenly spaced values per parameter — the paper's GRID
// scheme.
func GridSample(s *Space, budget int) []Sim {
	nParams := s.NumParams()
	g := int(math.Floor(math.Pow(float64(budget), 1/float64(nParams)) + 1e-9))
	if g < 1 {
		g = 1
	}
	if g > s.Res {
		g = s.Res
	}
	// g evenly spaced grid positions per mode.
	positions := make([]int, g)
	for i := 0; i < g; i++ {
		if g == 1 {
			positions[i] = s.Res / 2
		} else {
			positions[i] = i * (s.Res - 1) / (g - 1)
		}
	}
	count := 1
	for i := 0; i < nParams; i++ {
		count *= g
	}
	sims := make([]Sim, 0, count)
	idx := make([]int, nParams)
	var walk func(mode int)
	walk = func(mode int) {
		if mode == nParams {
			sim := make(Sim, nParams)
			for k, pos := range idx {
				sim[k] = positions[pos]
			}
			sims = append(sims, sim)
			return
		}
		for i := 0; i < g; i++ {
			idx[mode] = i
			walk(mode + 1)
		}
	}
	walk(0)
	return sims
}

// SliceSample selects full two-dimensional slices through the parameter
// space — the paper's SLICE scheme. Each slice varies one random pair of
// parameters over their full grids while fixing the remaining parameters
// at random values; slices are added until the budget is exhausted (the
// final slice is truncated at random).
func SliceSample(s *Space, budget int, rng *rand.Rand) []Sim {
	total := s.TotalSims()
	if budget > total {
		budget = total
	}
	nParams := s.NumParams()
	if nParams < 2 {
		return RandomSample(s, budget, rng)
	}
	seen := make(map[int]bool, budget)
	sims := make([]Sim, 0, budget)
	for len(sims) < budget {
		// Choose the two free modes and fix the rest.
		a := rng.Intn(nParams)
		b := rng.Intn(nParams - 1)
		if b >= a {
			b++
		}
		fixed := make(Sim, nParams)
		for k := range fixed {
			fixed[k] = rng.Intn(s.Res)
		}
		// Visit the slice in random order so truncation keeps coverage even.
		cells := rng.Perm(s.Res * s.Res)
		for _, c := range cells {
			if len(sims) >= budget {
				break
			}
			idx := make(Sim, nParams)
			copy(idx, fixed)
			idx[a] = c % s.Res
			idx[b] = c / s.Res
			k := idx.key(s.Res)
			if seen[k] {
				continue
			}
			seen[k] = true
			sims = append(sims, idx)
		}
	}
	return sims
}

// LatinHypercubeSample selects simulations by Latin hypercube design — the
// classic space-filling scheme from the experiment-design literature the
// paper's related work builds on (its references [9], [10], [15]): the
// budget is split into strata per parameter, and each stratum of each
// parameter is hit exactly once (up to grid rounding). Compared to RANDOM
// it guarantees marginal coverage; compared to GRID it spends the whole
// budget.
func LatinHypercubeSample(s *Space, budget int, rng *rand.Rand) []Sim {
	total := s.TotalSims()
	if budget > total {
		budget = total
	}
	if budget < 1 {
		return nil
	}
	nParams := s.NumParams()
	// One permutation of strata per parameter; stratum i maps to a grid
	// index inside the i-th equal slice of the grid.
	perms := make([][]int, nParams)
	for k := range perms {
		perms[k] = rng.Perm(budget)
	}
	seen := make(map[int]bool, budget)
	sims := make([]Sim, 0, budget)
	for i := 0; i < budget; i++ {
		idx := make(Sim, nParams)
		for k := 0; k < nParams; k++ {
			stratum := perms[k][i]
			// Jittered position within the stratum, rounded to the grid.
			pos := (float64(stratum) + rng.Float64()) / float64(budget)
			g := int(pos * float64(s.Res))
			if g >= s.Res {
				g = s.Res - 1
			}
			idx[k] = g
		}
		key := idx.key(s.Res)
		if seen[key] {
			// Grid rounding can collide; fall back to a fresh random cell.
			for {
				for k := range idx {
					idx[k] = rng.Intn(s.Res)
				}
				key = idx.key(s.Res)
				if !seen[key] {
					break
				}
			}
		}
		seen[key] = true
		sims = append(sims, idx)
	}
	return sims
}

// EncodeOptions configures the fault-tolerant Encode fan-out.
type EncodeOptions struct {
	// Workers is the shared worker-pool size (0 = package default, 1 =
	// serial).
	Workers int
	// Retry is the transient-failure retry policy for simulation runs;
	// the zero value normalizes to the faults package defaults.
	Retry faults.RetryPolicy
	// Span, when non-nil, is the simulate stage span: EncodeCtx records
	// the fan-out's EncodeStats and cell count on it as deterministic
	// counters. A nil Span costs one nil check.
	Span *obs.Span
}

// EncodeStats accounts for every fault handled during an Encode fan-out.
type EncodeStats struct {
	// ExecutedSims counts simulations actually run (success or failure).
	ExecutedSims int
	// RetriedSims counts simulations that succeeded after ≥1 failed
	// attempt.
	RetriedSims int
	// FailedSims counts simulations dropped after panic or retry
	// exhaustion; their cells are simply absent from the tensor.
	FailedSims int
	// QuarantinedCells counts non-finite cell values rejected at ingest.
	QuarantinedCells int
}

// Encode runs every selected simulation and stores its per-timestamp cell
// values into a sparse ensemble tensor of the full 5-mode shape.
// Simulations execute in parallel on the shared worker pool; see EncodeCtx
// for the cancellable, fault-tolerant entry point.
func Encode(s *Space, sims []Sim) *SparseEnsemble {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx API is the root of its own context tree
	se, _, err := EncodeCtx(context.Background(), s, sims, EncodeOptions{})
	if err != nil {
		// Unreachable with a background context: EncodeCtx only fails on
		// context cancellation.
		panic(fmt.Sprintf("ensemble: Encode: %v", err))
	}
	return se
}

// EncodeCtx is Encode on the shared worker pool with the full
// fault-tolerance runtime: cooperative cancellation (deterministic drain,
// no goroutine leaks), bounded retries with backoff for transient
// simulation failures, panic capture that converts a crashed run into a
// recorded failure, and divergence quarantine of non-finite cell values at
// ingest. The returned stats account for every fault handled; the tensor
// layout is bit-identical to the legacy Encode for fault-free runs under
// any worker count.
func EncodeCtx(ctx context.Context, s *Space, sims []Sim, opts EncodeOptions) (*SparseEnsemble, EncodeStats, error) {
	s.Reference() // materialise before fan-out
	t := s.TimeSamples
	nParams := s.NumParams()
	values := make([][]float64, len(sims))

	var (
		mu    sync.Mutex
		stats EncodeStats
	)
	err := parallel.ForCtx(ctx, len(sims), opts.Workers, func(start, end int) {
		for i := start; i < end; i++ {
			if ctx.Err() != nil {
				return
			}
			var cells []float64
			key := faults.SimKey(0, floatsOf(sims[i]))
			attempts, rerr := opts.Retry.Run(ctx, key, func(actx context.Context) error {
				c, serr := s.SimCellsCtx(actx, sims[i])
				if serr != nil {
					return serr
				}
				cells = c
				return nil
			})
			mu.Lock()
			switch {
			case rerr == nil:
				stats.ExecutedSims++
				if attempts > 1 {
					stats.RetriedSims++
				}
				values[i] = cells
			case errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded):
				// Campaign-level cancellation: not a simulation failure.
			default:
				stats.ExecutedSims++
				stats.FailedSims++
			}
			mu.Unlock()
		}
	})
	if err != nil {
		return nil, stats, err
	}

	sp := &SparseEnsemble{Space: s, Tensor: tensor.NewSparse(s.Shape()), NumSims: len(sims)}
	sp.Tensor.RejectNonFinite = true
	idx := make([]int, nParams+1)
	for i, sim := range sims {
		if values[i] == nil {
			continue // failed simulation: cells absent
		}
		copy(idx, sim)
		for tt := 0; tt < t; tt++ {
			idx[nParams] = tt
			sp.Tensor.Append(idx, values[i][tt])
		}
	}
	stats.QuarantinedCells = sp.Tensor.Rejected
	sp.Stats = stats
	opts.Span.Set("sims", int64(len(sims)))
	opts.Span.Set("cells", int64(sp.Tensor.NNZ()))
	stats.record(opts.Span)
	return sp, stats, nil
}

// floatsOf widens grid indices to the float key the faults package hashes.
func floatsOf(sim Sim) []float64 {
	out := make([]float64, len(sim))
	for i, v := range sim {
		out[i] = float64(v)
	}
	return out
}

// SparseEnsemble couples an encoded ensemble tensor with its simulation
// budget accounting.
type SparseEnsemble struct {
	Space *Space
	// Tensor is the sparse 5-mode ensemble tensor.
	Tensor *tensor.Sparse
	// NumSims is the number of simulation runs spent (budget, including
	// failed runs).
	NumSims int
	// Stats is the fault accounting of the encode fan-out.
	Stats EncodeStats
}

// String summarises the ensemble for logs and debugging.
func (se *SparseEnsemble) String() string {
	return fmt.Sprintf("ensemble(%s, %d sims, %d cells, density %.2e)",
		se.Space.Sys.Name(), se.NumSims, se.Tensor.NNZ(), se.Tensor.Density())
}
