package ensemble

import "math/rand"

// counterSource is a counter-based rand.Source64: draw n of stream seed is
// the splitmix64 mix of (seed, n) and nothing else. Unlike the default
// math/rand source there is no hidden evolving state — reseeding with the
// same value replays the identical stream on every platform and build,
// which is what makes byte-for-byte reproducible sampling guarantees
// possible for CLI tools (cmd/tensorstore put).
type counterSource struct {
	seed uint64
	n    uint64
}

// CounterRand returns a *rand.Rand over the counter-based stream for
// seed. Two CounterRand(seed) instances always produce identical draw
// sequences; the stream is a pure function of (seed, draw index).
func CounterRand(seed int64) *rand.Rand {
	return rand.New(&counterSource{seed: uint64(seed)})
}

// Uint64 implements rand.Source64.
func (s *counterSource) Uint64() uint64 {
	s.n++
	return counterMix(s.seed + s.n*0x9e3779b97f4a7c15)
}

// Int63 implements rand.Source.
func (s *counterSource) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Seed implements rand.Source, restarting the stream.
func (s *counterSource) Seed(seed int64) {
	s.seed = uint64(seed)
	s.n = 0
}

// counterMix is the splitmix64 finalizer: a bijective avalanche mix, so
// consecutive counter values map to statistically independent outputs.
func counterMix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
