package ensemble

import "repro/internal/obs"

// Encode fan-out instrumentation. The counter names are shared with the
// PF-partitioned campaign in internal/partition — the registry's
// get-or-create semantics hand both packages the same atomics, so the
// process-wide totals cover baseline and M2TD runs alike.
var (
	encExecutedTotal = obs.Default.Counter("m2td_sims_executed_total",
		"Simulations that ran to completion in this process.")
	encRetriedTotal = obs.Default.Counter("m2td_sims_retried_total",
		"Executed simulations that needed more than one attempt.")
	encFailedTotal = obs.Default.Counter("m2td_sims_failed_total",
		"Simulations that exhausted their retry budget or crashed fatally.")
	encQuarantinedTotal = obs.Default.Counter("m2td_cells_quarantined_total",
		"Non-finite cell values dropped at ingest (divergence quarantine).")
)

// record mirrors one Encode fan-out's stats into the metrics registry and
// onto the stage span (deterministic counters).
func (s EncodeStats) record(span *obs.Span) {
	encExecutedTotal.Add(int64(s.ExecutedSims))
	encRetriedTotal.Add(int64(s.RetriedSims))
	encFailedTotal.Add(int64(s.FailedSims))
	encQuarantinedTotal.Add(int64(s.QuarantinedCells))
	span.Add("sims_executed", int64(s.ExecutedSims))
	span.Add("sims_retried", int64(s.RetriedSims))
	span.Add("sims_failed", int64(s.FailedSims))
	span.Add("cells_quarantined", int64(s.QuarantinedCells))
}
