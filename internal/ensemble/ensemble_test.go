package ensemble

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dynsys"
)

// tinySpace returns a small double-pendulum space suitable for unit tests.
func tinySpace() *Space {
	return NewSpace(dynsys.NewDoublePendulum(), 4, 3)
}

func TestSpaceGeometry(t *testing.T) {
	s := tinySpace()
	if s.NumParams() != 4 || s.Order() != 5 || s.TimeMode() != 4 {
		t.Fatalf("geometry: params=%d order=%d timeMode=%d", s.NumParams(), s.Order(), s.TimeMode())
	}
	shape := s.Shape()
	want := []int{4, 4, 4, 4, 3}
	for i, d := range want {
		if shape[i] != d {
			t.Fatalf("Shape = %v, want %v", shape, want)
		}
	}
	if s.TotalSims() != 256 {
		t.Fatalf("TotalSims = %d, want 256", s.TotalSims())
	}
	if s.DefaultIndex() != 2 {
		t.Fatalf("DefaultIndex = %d, want 2", s.DefaultIndex())
	}
}

func TestSpaceInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSpace(0, 0) did not panic")
		}
	}()
	NewSpace(dynsys.NewDoublePendulum(), 0, 0)
}

func TestModeNames(t *testing.T) {
	s := tinySpace()
	want := []string{"phi1", "phi2", "m1", "m2", "t"}
	for mode, name := range want {
		if got := s.ModeName(mode); got != name {
			t.Fatalf("ModeName(%d) = %q, want %q", mode, got, name)
		}
	}
}

func TestParamValuesEndpoints(t *testing.T) {
	s := tinySpace()
	ps := s.Sys.Params()
	vals := s.ParamValues([]int{0, 3, 0, 3})
	if vals[0] != ps[0].Min || vals[1] != ps[1].Max || vals[2] != ps[2].Min || vals[3] != ps[3].Max {
		t.Fatalf("ParamValues endpoints = %v", vals)
	}
}

func TestGroundTruthCachedAndConsistent(t *testing.T) {
	s := tinySpace()
	y1 := s.GroundTruth()
	y2 := s.GroundTruth()
	if y1 != y2 {
		t.Fatal("GroundTruth not cached")
	}
	// Spot-check one cell against a direct simulation.
	idx := []int{1, 2, 3, 0}
	cells := s.SimCells(idx)
	for tt, want := range cells {
		if got := y1.At(1, 2, 3, 0, tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("GroundTruth[1,2,3,0,%d] = %v, want %v", tt, got, want)
		}
	}
	if y1.Norm() == 0 {
		t.Fatal("ground truth is all zeros")
	}
}

func TestRandomSampleDistinctAndInRange(t *testing.T) {
	s := tinySpace()
	rng := rand.New(rand.NewSource(70))
	sims := RandomSample(s, 50, rng)
	if len(sims) != 50 {
		t.Fatalf("got %d sims, want 50", len(sims))
	}
	seen := map[int]bool{}
	for _, sim := range sims {
		for _, i := range sim {
			if i < 0 || i >= s.Res {
				t.Fatalf("index out of range: %v", sim)
			}
		}
		k := sim.key(s.Res)
		if seen[k] {
			t.Fatalf("duplicate simulation %v", sim)
		}
		seen[k] = true
	}
}

func TestRandomSampleBudgetClamped(t *testing.T) {
	s := tinySpace()
	rng := rand.New(rand.NewSource(71))
	sims := RandomSample(s, 10_000, rng)
	if len(sims) != s.TotalSims() {
		t.Fatalf("clamped budget: got %d, want %d", len(sims), s.TotalSims())
	}
}

func TestGridSample(t *testing.T) {
	s := NewSpace(dynsys.NewDoublePendulum(), 8, 3)
	sims := GridSample(s, 16) // g = 2 per mode -> 16 sims
	if len(sims) != 16 {
		t.Fatalf("got %d sims, want 16", len(sims))
	}
	// With g=2 the grid positions are 0 and Res-1.
	for _, sim := range sims {
		for _, i := range sim {
			if i != 0 && i != 7 {
				t.Fatalf("unexpected grid position in %v", sim)
			}
		}
	}
	// Budget below 2^4 collapses to the single midpoint.
	one := GridSample(s, 15)
	if len(one) != 1 || one[0][0] != 4 {
		t.Fatalf("g=1 grid = %v, want single midpoint", one)
	}
}

func TestGridSampleBudgetRespected(t *testing.T) {
	s := NewSpace(dynsys.NewDoublePendulum(), 8, 3)
	for _, budget := range []int{1, 16, 81, 100, 500} {
		sims := GridSample(s, budget)
		if len(sims) > budget {
			t.Fatalf("budget %d: grid produced %d sims", budget, len(sims))
		}
	}
}

func TestSliceSample(t *testing.T) {
	s := NewSpace(dynsys.NewDoublePendulum(), 6, 3)
	rng := rand.New(rand.NewSource(72))
	sims := SliceSample(s, 90, rng)
	if len(sims) != 90 {
		t.Fatalf("got %d sims, want 90", len(sims))
	}
	seen := map[int]bool{}
	for _, sim := range sims {
		k := sim.key(s.Res)
		if seen[k] {
			t.Fatalf("duplicate simulation %v", sim)
		}
		seen[k] = true
	}
}

func TestEncodeProducesFullTrajectories(t *testing.T) {
	s := tinySpace()
	rng := rand.New(rand.NewSource(73))
	sims := RandomSample(s, 20, rng)
	se := Encode(s, sims)
	if se.NumSims != 20 {
		t.Fatalf("NumSims = %d, want 20", se.NumSims)
	}
	if se.Tensor.NNZ() != 20*s.TimeSamples {
		t.Fatalf("NNZ = %d, want %d", se.Tensor.NNZ(), 20*s.TimeSamples)
	}
	// Every encoded cell matches the ground truth.
	y := s.GroundTruth()
	se.Tensor.Each(func(idx []int, v float64) {
		if got := y.Data[y.Shape.LinearIndex(idx)]; math.Abs(got-v) > 1e-12 {
			t.Fatalf("cell %v = %v, truth %v", idx, v, got)
		}
	})
	if se.String() == "" {
		t.Fatal("String() empty")
	}
}

func TestEncodeDensityMatchesBudget(t *testing.T) {
	s := tinySpace()
	rng := rand.New(rand.NewSource(74))
	se := Encode(s, RandomSample(s, 32, rng))
	wantDensity := float64(32*s.TimeSamples) / float64(s.Shape().NumElements())
	if math.Abs(se.Tensor.Density()-wantDensity) > 1e-12 {
		t.Fatalf("density = %v, want %v", se.Tensor.Density(), wantDensity)
	}
}

// Property: samplers never exceed budget and never emit duplicates.
func TestSamplerInvariantsQuick(t *testing.T) {
	s := tinySpace()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		budget := 1 + rng.Intn(100)
		for _, sims := range [][]Sim{
			RandomSample(s, budget, rng),
			GridSample(s, budget),
			SliceSample(s, budget, rng),
		} {
			if len(sims) > budget {
				return false
			}
			seen := map[int]bool{}
			for _, sim := range sims {
				k := sim.key(s.Res)
				if seen[k] {
					return false
				}
				seen[k] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(75))}); err != nil {
		t.Error(err)
	}
}

func TestLatinHypercubeSample(t *testing.T) {
	s := NewSpace(dynsys.NewDoublePendulum(), 8, 3)
	rng := rand.New(rand.NewSource(77))
	sims := LatinHypercubeSample(s, 40, rng)
	if len(sims) != 40 {
		t.Fatalf("%d sims, want 40", len(sims))
	}
	seen := map[int]bool{}
	for _, sim := range sims {
		for _, i := range sim {
			if i < 0 || i >= s.Res {
				t.Fatalf("index out of range: %v", sim)
			}
		}
		k := sim.key(s.Res)
		if seen[k] {
			t.Fatalf("duplicate simulation %v", sim)
		}
		seen[k] = true
	}
}

func TestLatinHypercubeMarginalCoverage(t *testing.T) {
	// With budget == Res, every grid value of every parameter appears
	// exactly once (the defining Latin property), up to rounding
	// collisions resolved randomly — require at least Res-1 distinct
	// values per parameter.
	s := NewSpace(dynsys.NewDoublePendulum(), 10, 3)
	rng := rand.New(rand.NewSource(78))
	sims := LatinHypercubeSample(s, 10, rng)
	for k := 0; k < s.NumParams(); k++ {
		values := map[int]bool{}
		for _, sim := range sims {
			values[sim[k]] = true
		}
		if len(values) < s.Res-1 {
			t.Fatalf("parameter %d covers only %d of %d values", k, len(values), s.Res)
		}
	}
}

func TestLatinHypercubeEdgeCases(t *testing.T) {
	s := NewSpace(dynsys.NewDoublePendulum(), 3, 2)
	rng := rand.New(rand.NewSource(79))
	if got := LatinHypercubeSample(s, 0, rng); got != nil {
		t.Fatalf("zero budget returned %v", got)
	}
	all := LatinHypercubeSample(s, 10_000, rng)
	if len(all) != s.TotalSims() {
		t.Fatalf("clamped budget: %d, want %d", len(all), s.TotalSims())
	}
}
