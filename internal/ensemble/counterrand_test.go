package ensemble

import "testing"

// TestCounterRandReproducible pins the stream's pure-function contract:
// same seed → identical draws, different seed → different draws, and
// reseeding replays from the start.
func TestCounterRandReproducible(t *testing.T) {
	a, b := CounterRand(42), CounterRand(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Int63(), b.Int63(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
	c := CounterRand(43)
	same := 0
	a2 := CounterRand(42)
	for i := 0; i < 100; i++ {
		if a2.Int63() == c.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 42 and 43 collide on %d/100 draws", same)
	}
}

// TestCounterRandGoldenStream pins the first draws byte-for-byte: any
// change to the mixing function breaks reproducibility guarantees
// documented by cmd/tensorstore put, so the stream is frozen here.
func TestCounterRandGoldenStream(t *testing.T) {
	src := counterSource{seed: 1}
	got := []uint64{src.Uint64(), src.Uint64(), src.Uint64()}
	gamma := uint64(0x9e3779b97f4a7c15)
	want := []uint64{
		counterMix(1 + gamma),
		counterMix(1 + 2*gamma),
		counterMix(1 + 3*gamma),
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("draw %d = %#x, want %#x", i, got[i], want[i])
		}
	}
	// The spot-check values below were computed once and frozen; they
	// guard counterMix itself against edits.
	if first := counterMix(1 + 0x9e3779b97f4a7c15); first == 0 || first == 1+0x9e3779b97f4a7c15 {
		t.Fatalf("counterMix degenerate: %#x", first)
	}
}

// TestCounterRandSamplers verifies the samplers accept the counter source
// and stay reproducible through it.
func TestCounterRandSamplers(t *testing.T) {
	sp := tinySpace()
	s1 := RandomSample(sp, 10, CounterRand(7))
	s2 := RandomSample(sp, 10, CounterRand(7))
	if len(s1) != 10 || len(s2) != 10 {
		t.Fatalf("budgets: %d, %d", len(s1), len(s2))
	}
	for i := range s1 {
		for k := range s1[i] {
			if s1[i][k] != s2[i][k] {
				t.Fatalf("sample %d differs: %v vs %v", i, s1[i], s2[i])
			}
		}
	}
}
