package ensemble

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/dynsys"
	"repro/internal/faults"
)

func encodeSpace(sys dynsys.System) *Space { return NewSpace(sys, 5, 4) }

func TestEncodeCtxMatchesEncode(t *testing.T) {
	space := encodeSpace(dynsys.NewLorenz())
	sims := RandomSample(space, 30, rand.New(rand.NewSource(3)))
	want := Encode(space, sims)
	for _, workers := range []int{1, 2, 7} {
		got, stats, err := EncodeCtx(context.Background(), space, sims, EncodeOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Tensor.Idx, want.Tensor.Idx) || !reflect.DeepEqual(got.Tensor.Vals, want.Tensor.Vals) {
			t.Fatalf("workers=%d: EncodeCtx differs from Encode", workers)
		}
		if stats.ExecutedSims != len(sims) || stats.FailedSims != 0 || stats.QuarantinedCells != 0 {
			t.Fatalf("workers=%d: clean-run stats %+v", workers, stats)
		}
	}
}

func TestEncodeCtxCancelled(t *testing.T) {
	space := encodeSpace(dynsys.NewLorenz())
	sims := RandomSample(space, 10, rand.New(rand.NewSource(4)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := EncodeCtx(ctx, space, sims, EncodeOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
}

func TestEncodeCtxFaultAccounting(t *testing.T) {
	inj := faults.New(faults.Config{Seed: 31, TransientRate: 0.3, DivergentRate: 0.25})
	space := encodeSpace(inj.Wrap(dynsys.NewLorenz()))
	sims := RandomSample(space, 40, rand.New(rand.NewSource(5)))

	se, stats, err := EncodeCtx(context.Background(), space, sims, EncodeOptions{
		Retry: faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	is := inj.Stats()
	if is.TransientSims == 0 || is.DivergentSims == 0 {
		t.Fatalf("no faults injected (%+v); test is vacuous", is)
	}
	if stats.FailedSims != 0 {
		t.Fatalf("recoverable faults produced %d failed sims", stats.FailedSims)
	}
	if stats.RetriedSims != is.TransientSims {
		t.Fatalf("RetriedSims %d != injected transient sims %d", stats.RetriedSims, is.TransientSims)
	}
	// Each divergent simulation's TimeSamples cells are all quarantined.
	if want := is.DivergentSims * space.TimeSamples; stats.QuarantinedCells != want {
		t.Fatalf("QuarantinedCells %d != %d divergent sims × %d stamps", stats.QuarantinedCells, is.DivergentSims, space.TimeSamples)
	}
	if se.Tensor.NNZ()+stats.QuarantinedCells != len(sims)*space.TimeSamples {
		t.Fatalf("stored %d + quarantined %d != %d requested cells", se.Tensor.NNZ(), stats.QuarantinedCells, len(sims)*space.TimeSamples)
	}
}
