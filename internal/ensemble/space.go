// Package ensemble models simulation parameter spaces and ensemble
// construction. It maps a dynamical system onto the paper's 5-mode tensor
// view — four simulation-parameter modes plus a time mode (Section VII-B) —
// and provides the conventional ensemble sampling schemes (Random, Grid,
// Slice of Section IV) that M2TD is evaluated against, as well as the
// exhaustive ground-truth tensor used by the accuracy metric.
package ensemble

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dynsys"
	"repro/internal/tensor"
)

// Space is a discretised simulation parameter space for one dynamical
// system: every simulation parameter gets Res grid values and time is
// sampled at TimeSamples stamps, yielding the tensor shape
// (Res, …, Res, TimeSamples) with the time mode last.
type Space struct {
	Sys dynsys.System
	// Res is the per-parameter grid resolution (the paper's 60–80).
	Res int
	// TimeSamples is the size of the time mode.
	TimeSamples int

	refOnce sync.Once
	ref     [][]float64

	truthOnce sync.Once
	truth     *tensor.Dense
}

// NewSpace returns a Space over the given system.
func NewSpace(sys dynsys.System, res, timeSamples int) *Space {
	if res < 1 || timeSamples < 1 {
		panic(fmt.Sprintf("ensemble: invalid space %d×%d", res, timeSamples))
	}
	return &Space{Sys: sys, Res: res, TimeSamples: timeSamples}
}

// NumParams returns the number of simulation-parameter modes.
func (s *Space) NumParams() int { return len(s.Sys.Params()) }

// Order returns the tensor order: parameters plus the time mode.
func (s *Space) Order() int { return s.NumParams() + 1 }

// TimeMode returns the index of the time mode (always last).
func (s *Space) TimeMode() int { return s.NumParams() }

// Shape returns the full ensemble tensor shape.
func (s *Space) Shape() tensor.Shape {
	sh := make(tensor.Shape, s.Order())
	for i := 0; i < s.NumParams(); i++ {
		sh[i] = s.Res
	}
	sh[s.TimeMode()] = s.TimeSamples
	return sh
}

// TotalSims returns the number of distinct simulations (parameter
// combinations, Res^N) in the full space.
func (s *Space) TotalSims() int {
	n := 1
	for i := 0; i < s.NumParams(); i++ {
		n *= s.Res
	}
	return n
}

// ModeName returns a human-readable name for a tensor mode.
func (s *Space) ModeName(mode int) string {
	if mode == s.TimeMode() {
		return "t"
	}
	return s.Sys.Params()[mode].Name
}

// ParamValues converts parameter grid indices to physical values.
func (s *Space) ParamValues(idx []int) []float64 {
	ps := s.Sys.Params()
	if len(idx) != len(ps) {
		panic(fmt.Sprintf("ensemble: ParamValues got %d indices for %d params", len(idx), len(ps)))
	}
	vals := make([]float64, len(ps))
	for i, p := range ps {
		vals[i] = p.Value(idx[i], s.Res)
	}
	return vals
}

// Reference returns the cached reference ("observed") trajectory.
func (s *Space) Reference() [][]float64 {
	s.refOnce.Do(func() {
		s.ref = dynsys.Reference(s.Sys, s.TimeSamples)
	})
	return s.ref
}

// SimCells runs the simulation at the given parameter grid indices and
// returns the tensor cell values for all TimeSamples timestamps.
func (s *Space) SimCells(idx []int) []float64 {
	return dynsys.CellValues(s.Sys, s.ParamValues(idx), s.Reference())
}

// SimCellsCtx is SimCells through the cancellable, fallible simulation
// path (dynsys.CellValuesCtx): fault-injecting or external systems can
// return errors, and cancellation aborts before the solver starts.
func (s *Space) SimCellsCtx(ctx context.Context, idx []int) ([]float64, error) {
	return dynsys.CellValuesCtx(ctx, s.Sys, s.ParamValues(idx), s.Reference())
}

// DefaultIndex returns the grid index used as the fixing constant for a
// parameter mode: the grid midpoint.
func (s *Space) DefaultIndex() int { return s.Res / 2 }

// GroundTruth exhaustively simulates the full parameter space and returns
// the complete tensor Y ∈ R^{Res×…×Res×T}. The result is cached; the
// computation is parallelised across all CPUs.
func (s *Space) GroundTruth() *tensor.Dense {
	s.truthOnce.Do(func() {
		s.Reference() // materialise before fan-out
		shape := s.Shape()
		d := tensor.NewDense(shape)
		total := s.TotalSims()
		nParams := s.NumParams()
		t := s.TimeSamples

		workers := runtime.NumCPU()
		if workers > total {
			workers = total
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				idx := make([]int, nParams)
				for sim := w; sim < total; sim += workers {
					// Decode sim into parameter grid indices (C order).
					rem := sim
					for k := nParams - 1; k >= 0; k-- {
						idx[k] = rem % s.Res
						rem /= s.Res
					}
					cells := s.SimCells(idx)
					// The time mode is last, so cells for one simulation are
					// contiguous in the dense tensor.
					base := sim * t
					//lint:allow quarantine -- ground-truth materialisation from the fault-free solver; evaluation-only tensor built without a quarantine configuration
					copy(d.Data[base:base+t], cells)
				}
			}(w)
		}
		wg.Wait()
		s.truth = d
	})
	return s.truth
}
