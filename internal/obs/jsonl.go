package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// JSONLVersion is the structured event-log format version.
const JSONLVersion = 1

// Event is one line of the structured event log. The log is a
// self-describing replayable stream:
//
//	{"kind":"meta", ...}     exactly once, first line
//	{"kind":"span", ...}     one per span, parents before children
//	                         (IDs assigned in deterministic pre-order)
//	{"kind":"metrics", ...}  optional final registry snapshot
//
// Span IDs are pre-order positions, so two runs of the same
// configuration emit the same id/parent/name/counters on every line;
// only start/duration fields differ.
type Event struct {
	Kind string `json:"kind"`

	// meta fields.
	Version   int    `json:"version,omitempty"`
	Trace     string `json:"trace,omitempty"`
	CreatedNS int64  `json:"created_unix_ns,omitempty"`

	// span fields. Parent is nil for the root span.
	ID       int              `json:"id,omitempty"`
	Parent   *int             `json:"parent,omitempty"`
	Name     string           `json:"name,omitempty"`
	StartNS  int64            `json:"start_ns,omitempty"`
	DurNS    int64            `json:"dur_ns,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`

	// metrics fields.
	Snapshot map[string]any `json:"snapshot,omitempty"`
}

// WriteJSONL emits the span tree (and, when snapshot is non-nil, a final
// metrics snapshot) as the structured event log. root may be nil, in
// which case only the meta (and snapshot) lines are written.
func WriteJSONL(w io.Writer, root *SpanData, snapshot map[string]any) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	meta := Event{Kind: "meta", Version: JSONLVersion, Trace: root.name(), CreatedNS: time.Now().UnixNano()}
	if err := enc.Encode(meta); err != nil {
		return err
	}
	if root != nil {
		id := 0
		var emit func(d *SpanData, parent *int) error
		emit = func(d *SpanData, parent *int) error {
			my := id
			id++
			ev := Event{
				Kind:     "span",
				ID:       my,
				Parent:   parent,
				Name:     d.Name,
				StartNS:  d.StartNS,
				DurNS:    d.DurNS,
				Counters: d.Counters,
				Gauges:   d.Gauges,
			}
			if err := enc.Encode(ev); err != nil {
				return err
			}
			for _, c := range d.Children {
				if err := emit(c, &my); err != nil {
					return err
				}
			}
			return nil
		}
		if err := emit(root, nil); err != nil {
			return err
		}
	}
	if snapshot != nil {
		if err := enc.Encode(Event{Kind: "metrics", Snapshot: snapshot}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (d *SpanData) name() string {
	if d == nil {
		return ""
	}
	return d.Name
}

// ReadJSONL replays a structured event log: it rebuilds the span tree and
// returns the final metrics snapshot (nil when the log carries none).
// Unknown event kinds are skipped, so the format can grow.
func ReadJSONL(r io.Reader) (*SpanData, map[string]any, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var (
		root     *SpanData
		byID     = map[int]*SpanData{}
		snapshot map[string]any
		sawMeta  bool
		line     int
	)
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, nil, fmt.Errorf("obs: trace log line %d: %w", line, err)
		}
		switch ev.Kind {
		case "meta":
			if ev.Version > JSONLVersion {
				return nil, nil, fmt.Errorf("obs: trace log version %d newer than supported %d", ev.Version, JSONLVersion)
			}
			sawMeta = true
		case "span":
			d := &SpanData{
				Name:     ev.Name,
				StartNS:  ev.StartNS,
				DurNS:    ev.DurNS,
				Counters: ev.Counters,
				Gauges:   ev.Gauges,
			}
			byID[ev.ID] = d
			if ev.Parent == nil {
				if root != nil {
					return nil, nil, fmt.Errorf("obs: trace log line %d: second root span", line)
				}
				root = d
			} else {
				p, ok := byID[*ev.Parent]
				if !ok {
					return nil, nil, fmt.Errorf("obs: trace log line %d: span %d references unknown parent %d", line, ev.ID, *ev.Parent)
				}
				p.Children = append(p.Children, d)
			}
		case "metrics":
			snapshot = ev.Snapshot
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if !sawMeta {
		return nil, nil, fmt.Errorf("obs: trace log has no meta line (not a trace log?)")
	}
	return root, snapshot, nil
}
