// Package obs is the zero-dependency observability layer of the M2TD
// pipeline: stage spans (Trace/Span), a process-wide metrics registry
// (counters, gauges, histograms with expvar and Prometheus exposition),
// and a structured JSONL event log replayable by cmd/tracecat.
//
// Design rules:
//
//   - Disabled observability is nil-check cheap. Every Span and Trace
//     method is safe on a nil receiver and returns immediately, so
//     instrumented code calls span methods unconditionally: a pipeline
//     run without a trace pays one nil check per call site, nothing else.
//   - Span structure is deterministic. Span names, hierarchy, and the
//     values in Counters depend only on the pipeline configuration —
//     never on the worker count, scheduling, or timing — so a span tree
//     can be asserted structurally in tests (Parallel=1 and Parallel=8
//     produce identical skeletons). Anything timing- or
//     scheduling-dependent (durations, allocation deltas, CPU-strip
//     counts) lives in Gauges, which the skeleton excludes.
//   - The package depends only on the standard library, so any internal
//     package (including the hot kernels in internal/parallel and
//     internal/tensor) may import it without cycles.
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one node of a trace: a named, timed region of the pipeline with
// deterministic counters, non-deterministic gauges, and child spans.
//
// All methods are safe on a nil receiver (no-ops returning zero values),
// and safe for concurrent use: independent child spans may be filled from
// different goroutines. For a deterministic child ORDER under concurrency,
// create the children serially (Start from one goroutine) and hand each
// child to its goroutine — the M2TD kernels follow this pattern.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	finished bool
	counters map[string]int64
	gauges   map[string]int64
	children []*Span
}

// Trace is the root container of one pipeline run's span tree.
type Trace struct {
	root *Span
}

// New starts a trace whose root span has the given name. The root is
// running until Trace.Finish (or Root().Finish()) is called.
func New(name string) *Trace {
	return &Trace{root: newSpan(name)}
}

// Root returns the root span; nil for a nil trace, so disabled tracing
// flows naturally through span-accepting options.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish finishes the root span.
func (t *Trace) Finish() { t.Root().Finish() }

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Start creates, appends, and starts a child span. Children appear in
// Start-call order; call Start serially when a deterministic order is
// required. On a nil receiver it returns nil, which is itself a valid
// (no-op) span.
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish records the span's duration. The first call wins; later calls
// are no-ops, so defer-finish plus explicit-finish is safe.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.finished {
		s.finished = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Add accumulates a deterministic counter. Counter values must depend
// only on the pipeline configuration (never on worker count or timing);
// they are part of the structural skeleton asserted in tests.
func (s *Span) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[name] += delta
	s.mu.Unlock()
}

// Set sets a deterministic counter to an absolute value.
func (s *Span) Set(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64, 4)
	}
	s.counters[name] = v
	s.mu.Unlock()
}

// SetGauge records a non-deterministic vital (allocation delta, CPU-strip
// count, occupancy…). Gauges are serialized but excluded from Skeleton.
func (s *Span) SetGauge(name string, v int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.gauges == nil {
		s.gauges = make(map[string]int64, 4)
	}
	s.gauges[name] = v
	s.mu.Unlock()
}

// AddGauge accumulates a non-deterministic vital.
func (s *Span) AddGauge(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.gauges == nil {
		s.gauges = make(map[string]int64, 4)
	}
	s.gauges[name] += delta
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the recorded duration (the running duration if the
// span has not finished; 0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.finished {
		return s.dur
	}
	return time.Since(s.start)
}

// Counter returns one deterministic counter's value (0 when absent).
func (s *Span) Counter(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.counters[name]
}

// Children returns a copy of the child list.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find descends the tree by child names and returns the first match per
// level, or nil when any step is missing.
func (s *Span) Find(path ...string) *Span {
	cur := s
	for _, name := range path {
		if cur == nil {
			return nil
		}
		var next *Span
		for _, c := range cur.Children() {
			if c.Name() == name {
				next = c
				break
			}
		}
		cur = next
	}
	return cur
}

// WithVitals snapshots process vitals (heap allocation count) and returns
// a closure that records the deltas as gauges and finishes the span. Use
// for stage-level spans only: runtime.ReadMemStats is too heavy for
// per-kernel spans. extra optionally supplies additional gauge readers
// (e.g. the parallel pool's strip counter) sampled at both ends.
func (s *Span) WithVitals(extra map[string]func() int64) func() {
	if s == nil {
		return func() {}
	}
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	base := make(map[string]int64, len(extra))
	for name, fn := range extra {
		base[name] = fn()
	}
	return func() {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		s.SetGauge("allocs", int64(m1.Mallocs-m0.Mallocs))
		for name, fn := range extra {
			s.SetGauge(name, fn()-base[name])
		}
		s.Finish()
	}
}

// Skeleton renders the deterministic structure of the subtree — names,
// hierarchy, and counters in sorted key order — one span per line,
// indentation showing depth. Durations and gauges are deliberately
// excluded: two runs of the same configuration produce byte-identical
// skeletons at any Parallel value.
func (s *Span) Skeleton() string {
	var b strings.Builder
	s.skeleton(&b, 0)
	return b.String()
}

func (s *Span) skeleton(b *strings.Builder, depth int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	name := s.name
	keys := make([]string, 0, len(s.counters))
	for k := range s.counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.counters[k]))
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(name)
	if len(parts) > 0 {
		b.WriteString(" [")
		b.WriteString(strings.Join(parts, " "))
		b.WriteString("]")
	}
	b.WriteString("\n")
	for _, c := range children {
		c.skeleton(b, depth+1)
	}
}

// SpanData is the immutable, serialization-friendly snapshot of a span
// subtree (the JSONL and tracecat representation).
type SpanData struct {
	Name     string           `json:"name"`
	StartNS  int64            `json:"start_ns"` // relative to the root span's start
	DurNS    int64            `json:"dur_ns"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
	Children []*SpanData      `json:"children,omitempty"`
}

// Data snapshots the subtree. Running spans snapshot their current
// elapsed time.
func (s *Span) Data() *SpanData {
	if s == nil {
		return nil
	}
	return s.data(s.startTime())
}

func (s *Span) startTime() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.start
}

func (s *Span) data(origin time.Time) *SpanData {
	s.mu.Lock()
	d := &SpanData{
		Name:    s.name,
		StartNS: s.start.Sub(origin).Nanoseconds(),
	}
	if s.finished {
		d.DurNS = s.dur.Nanoseconds()
	} else {
		d.DurNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.counters) > 0 {
		d.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			d.Counters[k] = v
		}
	}
	if len(s.gauges) > 0 {
		d.Gauges = make(map[string]int64, len(s.gauges))
		for k, v := range s.gauges {
			d.Gauges[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		d.Children = append(d.Children, c.data(origin))
	}
	return d
}

// Skeleton renders the deterministic structure of a snapshot, matching
// Span.Skeleton for the same tree.
func (d *SpanData) Skeleton() string {
	var b strings.Builder
	d.skeleton(&b, 0)
	return b.String()
}

func (d *SpanData) skeleton(b *strings.Builder, depth int) {
	if d == nil {
		return
	}
	keys := make([]string, 0, len(d.Counters))
	for k := range d.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(d.Name)
	if len(keys) > 0 {
		b.WriteString(" [")
		for i, k := range keys {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(b, "%s=%d", k, d.Counters[k])
		}
		b.WriteString("]")
	}
	b.WriteString("\n")
	for _, c := range d.Children {
		c.skeleton(b, depth+1)
	}
}

// Find descends the snapshot tree by child names, matching Span.Find.
func (d *SpanData) Find(path ...string) *SpanData {
	cur := d
	for _, name := range path {
		if cur == nil {
			return nil
		}
		var next *SpanData
		for _, c := range cur.Children {
			if c.Name == name {
				next = c
				break
			}
		}
		cur = next
	}
	return cur
}

// Walk visits the snapshot tree depth-first, parents before children.
func (d *SpanData) Walk(fn func(depth int, s *SpanData)) {
	d.walk(0, fn)
}

func (d *SpanData) walk(depth int, fn func(int, *SpanData)) {
	if d == nil {
		return
	}
	fn(depth, d)
	for _, c := range d.Children {
		c.walk(depth+1, fn)
	}
}
