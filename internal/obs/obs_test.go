package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSpanSafety exercises every Span/Trace method on nil receivers:
// disabled observability must be a no-op, never a panic.
func TestNilSpanSafety(t *testing.T) {
	var s *Span
	if c := s.Start("child"); c != nil {
		t.Fatalf("nil.Start returned non-nil span")
	}
	s.Finish()
	s.Add("a", 1)
	s.Set("b", 2)
	s.SetGauge("g", 3)
	s.AddGauge("g", 4)
	if got := s.Name(); got != "" {
		t.Errorf("nil.Name() = %q, want \"\"", got)
	}
	if got := s.Duration(); got != 0 {
		t.Errorf("nil.Duration() = %v, want 0", got)
	}
	if got := s.Counter("a"); got != 0 {
		t.Errorf("nil.Counter() = %d, want 0", got)
	}
	if got := s.Children(); got != nil {
		t.Errorf("nil.Children() = %v, want nil", got)
	}
	if got := s.Find("x", "y"); got != nil {
		t.Errorf("nil.Find() = %v, want nil", got)
	}
	s.WithVitals(nil)() // returned closure must be callable
	if got := s.Skeleton(); got != "" {
		t.Errorf("nil.Skeleton() = %q, want \"\"", got)
	}
	if got := s.Data(); got != nil {
		t.Errorf("nil.Data() = %v, want nil", got)
	}

	var tr *Trace
	if got := tr.Root(); got != nil {
		t.Errorf("nil trace Root() = %v, want nil", got)
	}
	tr.Finish()
}

// TestSpanTree verifies hierarchy, counters vs gauges, Find, and the
// skeleton's exclusion of non-deterministic gauges.
func TestSpanTree(t *testing.T) {
	tr := New("run")
	root := tr.Root()
	p := root.Start("partition")
	p.Add("sims", 10)
	p.Add("sims", 6)
	p.SetGauge("allocs", 12345)
	sub := p.Start("sub1")
	sub.Set("cells", 99)
	sub.Finish()
	p.Finish()
	d := root.Start("decompose")
	d.Finish()
	tr.Finish()

	if got := root.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	if got := p.Counter("sims"); got != 16 {
		t.Errorf("sims counter = %d, want 16", got)
	}
	if got := root.Find("partition", "sub1"); got != sub {
		t.Errorf("Find(partition, sub1) = %v, want the sub1 span", got)
	}
	if got := root.Find("partition", "nope"); got != nil {
		t.Errorf("Find of missing path = %v, want nil", got)
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "partition" || kids[1].Name() != "decompose" {
		t.Fatalf("children = %v, want [partition decompose]", kids)
	}

	want := "run\n  partition [sims=16]\n    sub1 [cells=99]\n  decompose\n"
	if got := root.Skeleton(); got != want {
		t.Errorf("Skeleton:\n%s\nwant:\n%s", got, want)
	}
	if strings.Contains(root.Skeleton(), "allocs") {
		t.Error("skeleton leaked a gauge")
	}
	// SpanData skeleton must match the live skeleton.
	if got := root.Data().Skeleton(); got != want {
		t.Errorf("Data().Skeleton:\n%s\nwant:\n%s", got, want)
	}
}

// TestSpanFinishOnce checks that the first Finish wins.
func TestSpanFinishOnce(t *testing.T) {
	s := newSpan("x")
	s.Finish()
	d := s.Duration()
	time.Sleep(5 * time.Millisecond)
	s.Finish()
	if got := s.Duration(); got != d {
		t.Errorf("second Finish changed duration: %v -> %v", d, got)
	}
}

// TestSpanConcurrentChildren fills sibling spans from many goroutines;
// run with -race this asserts the locking discipline.
func TestSpanConcurrentChildren(t *testing.T) {
	tr := New("run")
	root := tr.Root()
	const n = 8
	spans := make([]*Span, n)
	for i := range spans { // serial creation for deterministic order
		spans[i] = root.Start(fmt.Sprintf("mode%d", i))
	}
	var wg sync.WaitGroup
	for i, s := range spans {
		wg.Add(1)
		go func(i int, s *Span) {
			defer wg.Done()
			s.Add("rank", int64(i))
			s.SetGauge("allocs", int64(i*100))
			s.Finish()
		}(i, s)
	}
	wg.Wait()
	tr.Finish()
	kids := root.Children()
	for i, c := range kids {
		if want := fmt.Sprintf("mode%d", i); c.Name() != want {
			t.Errorf("child %d = %q, want %q", i, c.Name(), want)
		}
	}
}

// TestWithVitals checks that the closure records an allocs gauge and the
// extra reader delta, and finishes the span.
func TestWithVitals(t *testing.T) {
	tr := New("run")
	s := tr.Root().Start("stage")
	base := int64(7)
	done := s.WithVitals(map[string]func() int64{"strips": func() int64 { return base }})
	base = 19
	done()
	d := s.Data()
	if got := d.Gauges["strips"]; got != 12 {
		t.Errorf("strips gauge = %d, want 12", got)
	}
	if _, ok := d.Gauges["allocs"]; !ok {
		t.Error("allocs gauge missing")
	}
	if d.DurNS <= 0 {
		t.Error("span not finished by WithVitals closure")
	}
}

func TestRegistryCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(4)
	c.Add(-100) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("test_total", "other help"); again != c {
		t.Error("get-or-create returned a different counter")
	}
	g := r.Gauge("test_gauge", "help")
	g.Add(3)
	g.Add(-1)
	g.Set(10)
	if got := g.Value(); got != 10 {
		t.Errorf("gauge = %d, want 10", got)
	}
	f := r.FuncGauge("test_func", "help", func() int64 { return 42 })
	if got := f.Value(); got != 42 {
		t.Errorf("func gauge = %d, want 42", got)
	}

	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("test_total", "wrong kind")
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Errorf("count = %d, want 4", got)
	}
	if got := h.Sum(); got != 55.55 {
		t.Errorf("sum = %g, want 55.55", got)
	}
	var b bytes.Buffer
	h.writeProm(&b)
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="10"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a").Add(3)
	r.Gauge("b_now", "gauges b").Set(-2)
	var b bytes.Buffer
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP a_total counts a",
		"# TYPE a_total counter",
		"a_total 3",
		"# TYPE b_now gauge",
		"b_now -2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Registration order is stable.
	if strings.Index(out, "a_total") > strings.Index(out, "b_now") {
		t.Error("exposition not in registration order")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(7)
	r.Histogram("h_seconds", "", nil).Observe(0.2)
	snap := r.Snapshot()
	if got := snap["c_total"]; got != int64(7) {
		t.Errorf("snapshot c_total = %v, want 7", got)
	}
	if got := snap["h_seconds_count"]; got != int64(1) {
		t.Errorf("snapshot h_seconds_count = %v, want 1", got)
	}
	ints := r.SnapshotInt64()
	if got := ints["c_total"]; got != 7 {
		t.Errorf("SnapshotInt64 c_total = %d, want 7", got)
	}
	if _, ok := ints["h_seconds_sum"]; ok {
		t.Error("SnapshotInt64 leaked a float entry")
	}
}

// TestJSONLRoundTrip serializes a span tree plus snapshot and reads it
// back, asserting the skeleton and the snapshot survive.
func TestJSONLRoundTrip(t *testing.T) {
	tr := New("run")
	root := tr.Root()
	p := root.Start("partition")
	p.Add("sims", 64)
	p.SetGauge("allocs", 1234)
	c := p.Start("sub1")
	c.Set("cells", 512)
	c.Finish()
	p.Finish()
	tr.Finish()

	snap := map[string]any{"m2td_runs_total": int64(1), "m2td_sim_duration_seconds_sum": 0.5}
	var b bytes.Buffer
	if err := WriteJSONL(&b, root.Data(), snap); err != nil {
		t.Fatal(err)
	}
	got, gotSnap, err := ReadJSONL(&b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Skeleton() != root.Skeleton() {
		t.Errorf("round-trip skeleton:\n%s\nwant:\n%s", got.Skeleton(), root.Skeleton())
	}
	if got.Find("partition").Gauges["allocs"] != 1234 {
		t.Error("gauges lost in round trip")
	}
	if gotSnap["m2td_runs_total"] != float64(1) { // JSON numbers decode as float64
		t.Errorf("snapshot m2td_runs_total = %v", gotSnap["m2td_runs_total"])
	}
}

func TestReadJSONLErrors(t *testing.T) {
	if _, _, err := ReadJSONL(strings.NewReader("")); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed input should error")
	}
}

// TestServeMetrics starts the HTTP listener on a free port and scrapes
// all three surfaces: Prometheus text, expvar JSON, and a pprof profile.
func TestServeMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("serve_test_total", "help").Add(9)
	srv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body)
	}

	if body := get("/metrics"); !strings.Contains(body, "serve_test_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(get("/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	if body := get("/debug/pprof/goroutine?debug=1"); !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/goroutine unexpected body:\n%s", body)
	}
}
