package obs

import (
	"net"
	"runtime"
	"testing"
	"time"
)

// TestServeMetricsMultiProcessPorts exercises the multi-worker pattern:
// every worker asks for ":0" and must get its own distinct bound port.
func TestServeMetricsMultiProcessPorts(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		srv, err := ServeMetrics("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		if srv.Addr == "" {
			t.Fatal("no bound address reported")
		}
		if _, _, err := net.SplitHostPort(srv.Addr); err != nil {
			t.Fatalf("bound address %q unparseable: %v", srv.Addr, err)
		}
		if seen[srv.Addr] {
			t.Fatalf("address %s handed out twice", srv.Addr)
		}
		seen[srv.Addr] = true
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	srv, err := ServeMetrics("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	first := srv.Close()
	for i := 0; i < 3; i++ {
		if got := srv.Close(); got != first {
			t.Fatalf("Close call %d returned %v, first returned %v", i+2, got, first)
		}
	}
	// The listener is really gone: the port is rebindable.
	lis, err := net.Listen("tcp", srv.Addr)
	if err != nil {
		t.Fatalf("port still held after Close: %v", err)
	}
	lis.Close()

	var nilServer *Server
	if err := nilServer.Close(); err != nil {
		t.Fatalf("nil server Close: %v", err)
	}
}

// TestServerCloseNoLeak asserts Close joins the serve goroutine: a
// create/close churn must not grow the goroutine count.
func TestServerCloseNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		srv, err := ServeMetrics("127.0.0.1:0", NewRegistry())
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Allow unrelated runtime goroutines to settle before comparing.
	var after int
	for i := 0; i < 50; i++ {
		after = runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d across 20 serve/close cycles", before, after)
}
