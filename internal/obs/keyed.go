package obs

import "strings"

// Keyed instruments are the sanctioned path for per-key metric series
// (per-tenant counters, per-phase histograms). The registry has no
// label support, so a keyed instrument folds a sanitized key into the
// metric name — but the BASE name stays a compile-time constant at the
// registration site, which is what the metrichygiene analyzer enforces:
// the exported vocabulary is greppable, and only the key suffix varies
// at runtime. Children are get-or-create through the registry, so a
// keyed instrument is just a name factory; it holds no state.

// KeyedCounter derives per-key counters from one constant base name.
type KeyedCounter struct {
	r          *Registry
	base, help string
}

// KeyedCounter returns a per-key counter family with the given base
// name; each distinct key materialises the counter base_<key>.
func (r *Registry) KeyedCounter(base, help string) *KeyedCounter {
	return &KeyedCounter{r: r, base: base, help: help}
}

// WithKey returns the child counter for key, creating it on first use.
func (k *KeyedCounter) WithKey(key string) *Counter {
	return k.r.Counter(k.base+"_"+SanitizeKey(key), k.help)
}

// KeyedHistogram derives per-key histograms from one constant base name
// and one shared bucket layout.
type KeyedHistogram struct {
	r          *Registry
	base, help string
	bounds     []float64
}

// KeyedHistogram returns a per-key histogram family; nil bounds select
// DefDurationBuckets, and every child shares the layout so per-key
// series stay comparable.
func (r *Registry) KeyedHistogram(base, help string, bounds []float64) *KeyedHistogram {
	return &KeyedHistogram{r: r, base: base, help: help, bounds: bounds}
}

// WithKey returns the child histogram for key, creating it on first use.
func (k *KeyedHistogram) WithKey(key string) *Histogram {
	return k.r.Histogram(k.base+"_"+SanitizeKey(key), k.help, k.bounds)
}

// SanitizeKey maps a free-form key (a tenant identity, a phase label)
// onto Prometheus metric-name characters; the empty key becomes "anon".
func SanitizeKey(key string) string {
	if key == "" {
		return "anon"
	}
	var b strings.Builder
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
