package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a lightweight diagnostics HTTP server exposing a Registry:
//
//	/metrics        Prometheus text exposition (version 0.0.4)
//	/debug/vars     expvar JSON (the registry is published as "m2td")
//	/debug/pprof/…  the standard net/http/pprof profile endpoints
//
// It binds its own listener (addr ":0" picks a free port; Addr reports
// the bound address) so campaign processes can serve live metrics and
// profiles without any global http.DefaultServeMux pollution.
type Server struct {
	// Addr is the bound listen address, e.g. "127.0.0.1:43017".
	Addr string

	lis       net.Listener
	srv       *http.Server
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Mux returns a fresh diagnostics mux for reg (nil means Default):
// /metrics, /debug/vars, and the /debug/pprof/ endpoints, plus an index
// page at "/". ServeMetrics serves exactly this mux on its own listener;
// callers embedding diagnostics into a larger server (the campaign
// server) mount the same mux instead of duplicating the wiring.
func Mux(reg *Registry) *http.ServeMux {
	if reg == nil {
		reg = Default
	}
	reg.PublishExpvar("m2td")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "m2td observability endpoints:\n  /metrics\n  /debug/vars\n  /debug/pprof/\n")
	})
	return mux
}

// ServeMetrics starts serving reg on addr in a background goroutine and
// returns immediately. The caller owns the returned server and should
// Close it on shutdown; Close is also safe to leave to process exit for
// CLI tools.
func ServeMetrics(addr string, reg *Registry) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: metrics listener %q: %w", addr, err)
	}
	srv := &http.Server{Handler: Mux(reg), ReadHeaderTimeout: 5 * time.Second}
	s := &Server{Addr: lis.Addr().String(), lis: lis, srv: srv, done: make(chan struct{})}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path.
		_ = srv.Serve(lis)
		close(s.done)
	}()
	return s, nil
}

// Close stops the server, releases the listener, and joins the serve
// goroutine, so a closed Server leaves nothing running. It is
// idempotent: every call after the first returns the first call's
// result — worker processes that close on both the shutdown path and a
// deferred cleanup don't race or double-close the listener.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	s.closeOnce.Do(func() {
		s.closeErr = s.srv.Close()
		<-s.done
	})
	return s.closeErr
}
