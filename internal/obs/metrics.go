package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All operations are
// lock-free atomics, cheap enough for hot kernels.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters are
// monotone by contract).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) writeProm(w io.Writer) {
	writeHeader(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.Value())
}

func (c *Counter) snapshotInto(m map[string]any) { m[c.name] = c.Value() }

// Gauge is a metric that can go up and down (occupancy, sizes).
type Gauge struct {
	name, help string
	v          atomic.Int64
}

// Add moves the gauge by d (either sign).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Set sets the gauge to an absolute value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) writeProm(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.Value())
}

func (g *Gauge) snapshotInto(m map[string]any) { m[g.name] = g.Value() }

// FuncGauge exposes an externally maintained value (e.g. a counter owned
// by another package) through the registry without double bookkeeping.
type FuncGauge struct {
	name, help string
	fn         func() int64
}

// Value returns the current reading.
func (g *FuncGauge) Value() int64 { return g.fn() }

func (g *FuncGauge) metricName() string { return g.name }

func (g *FuncGauge) writeProm(w io.Writer) {
	writeHeader(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %d\n", g.name, g.fn())
}

func (g *FuncGauge) snapshotInto(m map[string]any) { m[g.name] = g.fn() }

// Histogram is a fixed-bucket cumulative histogram in the Prometheus
// style: counts per upper bound, plus sum and count. Observe is lock-free.
type Histogram struct {
	name, help string
	bounds     []float64 // ascending upper bounds; +Inf is implicit
	counts     []atomic.Int64
	count      atomic.Int64
	sumBits    atomic.Uint64
}

// DefDurationBuckets are the default buckets for duration-in-seconds
// histograms: 1ms … ~2min, exponential.
var DefDurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Bounds are ascending and short; linear scan beats binary search at
	// this size and stays branch-predictable.
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) writeProm(w io.Writer) {
	writeHeader(w, h.name, h.help, "histogram")
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", h.name, formatBound(b), cum)
	}
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count())
	fmt.Fprintf(w, "%s_sum %s\n", h.name, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(w, "%s_count %d\n", h.name, h.Count())
}

func (h *Histogram) snapshotInto(m map[string]any) {
	m[h.name+"_count"] = h.Count()
	m[h.name+"_sum"] = h.Sum()
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

func writeHeader(w io.Writer, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
}

// metric is the common interface of registered instruments.
type metric interface {
	metricName() string
	writeProm(w io.Writer)
	snapshotInto(m map[string]any)
}

// Registry holds named metrics. Get-or-create registration keeps
// instrument definitions next to their call sites (package-level vars in
// the instrumented packages) without central coordination. All methods
// are safe for concurrent use.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
	order  []metric // registration order, for stable exposition
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// Default is the process-wide registry every instrumented package
// registers into; ServeMetrics exposes it.
var Default = NewRegistry()

func (r *Registry) register(name string, make_ func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := make_()
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns the named counter, creating it on first use. Requesting
// an existing name with a different instrument kind panics: metric names
// are a process-wide contract.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{name: name, help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return g
}

// FuncGauge registers a function-backed gauge, creating it on first use.
func (r *Registry) FuncGauge(name, help string, fn func() int64) *FuncGauge {
	m := r.register(name, func() metric { return &FuncGauge{name: name, help: help, fn: fn} })
	g, ok := m.(*FuncGauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// ascending bucket upper bounds on first use (nil selects
// DefDurationBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, func() metric {
		if bounds == nil {
			bounds = DefDurationBuckets
		}
		h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...)}
		h.counts = make([]atomic.Int64, len(h.bounds))
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return h
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4), metrics in registration order.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.order...)
	r.mu.Unlock()
	for _, m := range ms {
		m.writeProm(w)
	}
}

// Snapshot returns a point-in-time view of every metric, keyed by metric
// name (histograms contribute _count and _sum entries). Keys are
// JSON-friendly; the map is freshly allocated.
func (r *Registry) Snapshot() map[string]any {
	r.mu.Lock()
	ms := append([]metric(nil), r.order...)
	r.mu.Unlock()
	out := make(map[string]any, len(ms))
	for _, m := range ms {
		m.snapshotInto(out)
	}
	return out
}

// SnapshotInt64 is Snapshot restricted to integer-valued instruments
// (counters, gauges, histogram counts), for exact assertions.
func (r *Registry) SnapshotInt64() map[string]int64 {
	out := make(map[string]int64)
	for k, v := range r.Snapshot() {
		if i, ok := v.(int64); ok {
			out[k] = i
		}
	}
	return out
}

// expvarPublished guards duplicate expvar.Publish calls (expvar panics on
// re-publication; tests and repeated servers share one process).
var expvarPublished sync.Map

// PublishExpvar exposes the registry's snapshot as one expvar map under
// the given name (idempotent per name).
func (r *Registry) PublishExpvar(name string) {
	if _, loaded := expvarPublished.LoadOrStore(name, true); loaded {
		return
	}
	expvar.Publish(name, expvar.Func(func() any {
		// Sort keys into an ordered map-like view for stable output.
		snap := r.Snapshot()
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]any, len(snap))
		for _, k := range keys {
			ordered[k] = snap[k]
		}
		return ordered
	}))
}
