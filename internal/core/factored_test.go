package core

import (
	"math/rand"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/partition"
	"repro/internal/tucker"
)

func TestFactoredMatchesJoinBased(t *testing.T) {
	// The factored core must equal the join-materialising core exactly,
	// for every fusion method, at full density.
	p := tinyPartition(t, 1, 180)
	ranks := tucker.UniformRanks(5, 3)
	for _, m := range Methods() {
		ref, err := Decompose(p, Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatal(err)
		}
		fac, err := DecomposeFactored(p, Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if fac.Join != nil {
			t.Fatalf("%s: factored result materialised a join tensor", m)
		}
		if !fac.Core.Equal(ref.Core, 1e-8) {
			t.Fatalf("%s: factored core differs from join-based core", m)
		}
		for mode := range ref.Factors {
			if !fac.Factors[mode].Equal(ref.Factors[mode], 1e-12) {
				t.Fatalf("%s: factor %d differs", m, mode)
			}
		}
	}
}

func TestFactoredMatchesJoinBasedReducedDensity(t *testing.T) {
	// Product structure also holds at E < 1 (partition.Generate samples
	// one shared free set per side), so the factorisation stays exact.
	p := tinyPartition(t, 0.4, 181)
	ranks := tucker.UniformRanks(5, 2)
	ref, err := Decompose(p, Options{Method: SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	fac, err := DecomposeFactored(p, Options{Method: SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	if !fac.Core.Equal(ref.Core, 1e-8) {
		t.Fatal("factored core differs at reduced density")
	}
}

func TestFactoredZeroJoinMatches(t *testing.T) {
	p := tinyPartition(t, 0.4, 182)
	ranks := tucker.UniformRanks(5, 2)
	ref, err := Decompose(p, Options{Method: CONCAT, Ranks: ranks, ZeroJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	fac, err := DecomposeFactored(p, Options{Method: CONCAT, Ranks: ranks, ZeroJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if !fac.Core.Equal(ref.Core, 1e-8) {
		t.Fatal("factored zero-join core differs from materialised zero-join core")
	}
}

func TestFactoredMultiPivot(t *testing.T) {
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.Config{
		Pivots:    []int{4, 0},
		Free1:     []int{1, 3},
		Free2:     []int{2},
		PivotFrac: 1,
		FreeFrac:  1,
	}
	p, err := partition.Generate(space, cfg, rand.New(rand.NewSource(183)))
	if err != nil {
		t.Fatal(err)
	}
	ranks := tucker.UniformRanks(5, 2)
	ref, err := Decompose(p, Options{Method: AVG, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	fac, err := DecomposeFactored(p, Options{Method: AVG, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	if !fac.Core.Equal(ref.Core, 1e-8) {
		t.Fatal("factored core differs for k=2 pivots")
	}
}

func TestFactoredValidation(t *testing.T) {
	p := tinyPartition(t, 1, 184)
	if _, err := DecomposeFactored(p, Options{Method: "nope", Ranks: tucker.UniformRanks(5, 2)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := DecomposeFactored(p, Options{Method: AVG, Ranks: []int{1}}); err == nil {
		t.Fatal("bad rank count accepted")
	}
	// Broken product structure: drop one cell.
	broken := &partition.Result{
		Space:        p.Space,
		Config:       p.Config,
		PivotConfigs: p.PivotConfigs,
		Free1Configs: p.Free1Configs,
		Free2Configs: p.Free2Configs,
		Sub1: &partition.SubEnsemble{
			Modes:     p.Sub1.Modes,
			NumPivots: p.Sub1.NumPivots,
			Tensor:    p.Sub1.Tensor.Clone(),
		},
		Sub2: p.Sub2,
	}
	broken.Sub1.Tensor.Idx = broken.Sub1.Tensor.Idx[:len(broken.Sub1.Tensor.Idx)-3]
	broken.Sub1.Tensor.Vals = broken.Sub1.Tensor.Vals[:len(broken.Sub1.Tensor.Vals)-1]
	if _, err := DecomposeFactored(broken, Options{Method: AVG, Ranks: tucker.UniformRanks(5, 2)}); err == nil {
		t.Fatal("broken product structure accepted")
	}
	// Missing config lists.
	noCfg := *p
	noCfg.PivotConfigs = nil
	if _, err := DecomposeFactored(&noCfg, Options{Method: AVG, Ranks: tucker.UniformRanks(5, 2)}); err == nil {
		t.Fatal("missing config lists accepted")
	}
}

func TestFactoredReconstructionAccuracy(t *testing.T) {
	p := tinyPartition(t, 1, 185)
	fac, err := DecomposeFactored(p, Options{Method: SELECT, Ranks: tucker.UniformRanks(5, 3)})
	if err != nil {
		t.Fatal(err)
	}
	y := p.Space.GroundTruth()
	relErr := fac.Reconstruct().Sub(y).Norm() / y.Norm()
	if relErr >= 1 {
		t.Fatalf("factored reconstruction relative error %v", relErr)
	}
}
