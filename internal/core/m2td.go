// Package core implements Multi-Task Tensor Decomposition (M2TD), the
// paper's primary contribution (Section VI): obtaining a Tucker
// decomposition of the high-order join tensor J directly from cheap HOSVD
// decompositions of the two low-order PF-partitioned sub-tensors X₁, X₂.
//
// Three fusion strategies are provided for the shared pivot-mode factor
// matrices, matching Algorithms 2–5 of the paper:
//
//   - M2TD-AVG (Algorithm 2): element-wise average of the two pivot factor
//     matrices.
//   - M2TD-CONCAT (Algorithm 3): leading left singular vectors of the
//     column-wise concatenation of the two pivot matricizations. Since the
//     left singular vectors of [A B] are the leading eigenvectors of
//     A·Aᵀ + B·Bᵀ, the combined factor is computed from the sum of the two
//     matricization Gram matrices — an exact reformulation that never
//     materialises the concatenation.
//   - M2TD-SELECT (Algorithms 4–5): each row of the fused factor is taken
//     from whichever side gives that row (entity) more energy (2-norm),
//     preventing low-energy rows from acting as noise.
//
// Non-pivot factors come directly from the owning sub-tensor's HOSVD. The
// core is recovered by projecting the JE-stitched join tensor through the
// assembled factor matrices: G = J ×₁ U(1)ᵀ ×₂ … ×ₙ U(N)ᵀ.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Method selects the pivot-factor fusion strategy.
type Method string

// The three M2TD variants of Section VI.
const (
	AVG    Method = "M2TD-AVG"
	CONCAT Method = "M2TD-CONCAT"
	SELECT Method = "M2TD-SELECT"
)

// Methods lists all fusion strategies in paper order.
func Methods() []Method { return []Method{AVG, CONCAT, SELECT} }

// Options configures a Decompose call.
type Options struct {
	// Method is the pivot-factor fusion strategy.
	Method Method
	// Ranks holds the per-original-mode target ranks (clipped to mode
	// sizes).
	Ranks []int
	// ZeroJoin selects zero-join JE-stitching for the core-recovery join
	// tensor (Section V-C.2); plain join otherwise.
	ZeroJoin bool
	// Workers is the shared worker-pool size for the decomposition hot
	// path: the X₁/X₂ sub-tensor factor extractions run concurrently
	// (errgroup-style join) and the Gram/TTM kernels inside each fan out.
	// 0 selects the parallel package default (GOMAXPROCS); 1 forces serial
	// execution. Results are bit-identical for any worker count.
	Workers int
}

// Result is an M2TD decomposition of the join tensor: Tucker factors in
// original mode order plus the recovered core.
type Result struct {
	// Factors holds one factor matrix per original tensor mode.
	Factors []*mat.Matrix
	// Core is the recovered core tensor G.
	Core *tensor.Dense
	// Join is the JE-stitched tensor the core was recovered from.
	Join *tensor.Sparse

	// Phase timings (the serial analogue of D-M2TD's three phases).
	SubDecompTime time.Duration
	StitchTime    time.Duration
	CoreTime      time.Duration
}

// Reconstruct expands the decomposition to the full tensor space:
// X̃ = G ×₁ U(1) ×₂ … ×ₙ U(N).
func (r *Result) Reconstruct() *tensor.Dense {
	return tensor.TuckerReconstruct(r.Core, r.Factors)
}

// Decompose runs M2TD over a PF-partitioned pair of sub-ensembles.
func Decompose(p *partition.Result, opts Options) (*Result, error) {
	return DecomposeCtx(context.Background(), p, opts)
}

// DecomposeCtx is Decompose with cooperative cancellation, polled between
// the three phases (sub-decomposition, stitching, core recovery). A phase
// that has started always runs to completion — its kernels never observe
// the context — so cancellation leaves no partially assembled factor set
// or half-stitched join behind; an un-cancelled DecomposeCtx is
// bit-identical to Decompose.
func DecomposeCtx(ctx context.Context, p *partition.Result, opts Options) (*Result, error) {
	switch opts.Method {
	case AVG, CONCAT, SELECT:
	default:
		return nil, fmt.Errorf("core: unknown M2TD method %q", opts.Method)
	}
	order := p.Space.Order()
	if len(opts.Ranks) != order {
		return nil, fmt.Errorf("core: %d ranks for order-%d space", len(opts.Ranks), order)
	}
	ranks := tucker.ClipRanks(p.Space.Shape(), opts.Ranks)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1: decompose the two low-order sub-tensors. Only the factor
	// matrices are needed; Gram matrices are retained for CONCAT fusion.
	start := time.Now()
	factors := buildFactors(p, opts.Method, ranks, opts.Workers)
	subTime := time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: JE-stitching.
	start = time.Now()
	var j *tensor.Sparse
	if opts.ZeroJoin {
		j = stitch.ZeroJoin(p)
	} else {
		j = stitch.Join(p)
	}
	stitchTime := time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: recover the core through the assembled factors.
	start = time.Now()
	coreT := tucker.CoreFromFactorsWorkers(j, factors, opts.Workers)
	coreTime := time.Since(start)

	return &Result{
		Factors:       factors,
		Core:          coreT,
		Join:          j,
		SubDecompTime: subTime,
		StitchTime:    stitchTime,
		CoreTime:      coreTime,
	}, nil
}

// buildFactors runs the sub-tensor decompositions and assembles the fused
// factor set in original mode order: pivot factors per the fusion method,
// free factors from the owning sub-tensor's HOSVD.
//
// The X₁ and X₂ decompositions are independent by construction, so every
// per-mode factor extraction — pivot modes (which read both sub-tensors)
// and the free modes of either side — is issued as one task on the shared
// worker pool and joined errgroup-style. Each task writes only its own
// factors[m] slot and every kernel inside is deterministic, so the result
// is bit-identical for any worker count.
func buildFactors(p *partition.Result, method Method, ranks []int, workers int) []*mat.Matrix {
	cfg := p.Config
	k := len(cfg.Pivots)
	factors := make([]*mat.Matrix, len(ranks))
	tasks := make([]func(), 0, len(ranks))
	for i, m := range cfg.Pivots {
		i, m := i, m
		r := ranks[m]
		tasks = append(tasks, func() {
			switch method {
			case AVG:
				var u1, u2 *mat.Matrix
				parallel.Do(workers,
					func() { u1 = tensor.LeadingModeVectorsWorkers(p.Sub1.Tensor, i, r, workers) },
					func() { u2 = tensor.LeadingModeVectorsWorkers(p.Sub2.Tensor, i, r, workers) },
				)
				factors[m] = mat.Average(u1, u2)
			case CONCAT:
				var g1, g2 *mat.Matrix
				parallel.Do(workers,
					func() { g1 = tensor.ModeGramWorkers(p.Sub1.Tensor, i, workers) },
					func() { g2 = tensor.ModeGramWorkers(p.Sub2.Tensor, i, workers) },
				)
				factors[m] = mat.LeadingEigenvectors(mat.Add(g1, g2), r)
			case SELECT:
				var u1, u2 *mat.Matrix
				parallel.Do(workers,
					func() { u1 = tensor.LeadingModeVectorsWorkers(p.Sub1.Tensor, i, r, workers) },
					func() { u2 = tensor.LeadingModeVectorsWorkers(p.Sub2.Tensor, i, r, workers) },
				)
				factors[m] = RowSelect(u1, u2)
			}
		})
	}
	for i, m := range cfg.Free1 {
		i, m := i, m
		tasks = append(tasks, func() {
			factors[m] = tensor.LeadingModeVectorsWorkers(p.Sub1.Tensor, k+i, ranks[m], workers)
		})
	}
	for i, m := range cfg.Free2 {
		i, m := i, m
		tasks = append(tasks, func() {
			factors[m] = tensor.LeadingModeVectorsWorkers(p.Sub2.Tensor, k+i, ranks[m], workers)
		})
	}
	parallel.Do(workers, tasks...)
	return factors
}

// RowSelect implements Algorithm 5: the fused factor matrix takes each row
// from whichever input matrix gives it the larger 2-norm (energy), i.e.
// from the sub-ensemble that represents that entity more strongly.
func RowSelect(u1, u2 *mat.Matrix) *mat.Matrix {
	if u1.Rows != u2.Rows || u1.Cols != u2.Cols {
		panic(fmt.Sprintf("core: RowSelect shape mismatch %d×%d vs %d×%d", u1.Rows, u1.Cols, u2.Rows, u2.Cols))
	}
	out := mat.New(u1.Rows, u1.Cols)
	for i := 0; i < u1.Rows; i++ {
		if mat.RowNorm(u1, i) >= mat.RowNorm(u2, i) {
			out.SetRow(i, u1.Row(i))
		} else {
			out.SetRow(i, u2.Row(i))
		}
	}
	return out
}
