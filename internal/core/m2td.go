// Package core implements Multi-Task Tensor Decomposition (M2TD), the
// paper's primary contribution (Section VI): obtaining a Tucker
// decomposition of the high-order join tensor J directly from cheap HOSVD
// decompositions of the two low-order PF-partitioned sub-tensors X₁, X₂.
//
// Three fusion strategies are provided for the shared pivot-mode factor
// matrices, matching Algorithms 2–5 of the paper:
//
//   - M2TD-AVG (Algorithm 2): element-wise average of the two pivot factor
//     matrices.
//   - M2TD-CONCAT (Algorithm 3): leading left singular vectors of the
//     column-wise concatenation of the two pivot matricizations. Since the
//     left singular vectors of [A B] are the leading eigenvectors of
//     A·Aᵀ + B·Bᵀ, the combined factor is computed from the sum of the two
//     matricization Gram matrices — an exact reformulation that never
//     materialises the concatenation.
//   - M2TD-SELECT (Algorithms 4–5): each row of the fused factor is taken
//     from whichever side gives that row (entity) more energy (2-norm),
//     preventing low-energy rows from acting as noise.
//
// Non-pivot factors come directly from the owning sub-tensor's HOSVD. The
// core is recovered by projecting the JE-stitched join tensor through the
// assembled factor matrices: G = J ×₁ U(1)ᵀ ×₂ … ×ₙ U(N)ᵀ.
package core

import (
	"context"
	"fmt"
	"time"

	"repro/internal/mat"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// Method selects the pivot-factor fusion strategy.
type Method string

// The three M2TD variants of Section VI.
const (
	AVG    Method = "M2TD-AVG"
	CONCAT Method = "M2TD-CONCAT"
	SELECT Method = "M2TD-SELECT"
)

// Methods lists all fusion strategies in paper order.
func Methods() []Method { return []Method{AVG, CONCAT, SELECT} }

// Options configures a Decompose call.
type Options struct {
	// Method is the pivot-factor fusion strategy.
	Method Method
	// Ranks holds the per-original-mode target ranks (clipped to mode
	// sizes).
	Ranks []int
	// ZeroJoin selects zero-join JE-stitching for the core-recovery join
	// tensor (Section V-C.2); plain join otherwise.
	ZeroJoin bool
	// Workers is the shared worker-pool size for the decomposition hot
	// path: the X₁/X₂ sub-tensor factor extractions run concurrently
	// (errgroup-style join) and the Gram/TTM kernels inside each fan out.
	// 0 selects the parallel package default (GOMAXPROCS); 1 forces serial
	// execution. Results are bit-identical for any worker count.
	Workers int
	// Sketch, when enabled, runs the decomposition on biased random
	// sketches of the sub-tensors and join instead of the exact inputs.
	Sketch SketchSpec
	// Span, when non-nil, is the decompose stage span: DecomposeCtx opens
	// one child span per phase (factors, stitch, core), with one sub-span
	// per original mode under factors (pivot modes carry x1/x2 kernel
	// sub-spans; sketched runs add sketch_x1/sketch_x2 under factors and
	// sketch_join under core). Span structure and counters are
	// deterministic for any Workers value; a nil Span costs one nil check
	// per site.
	Span *obs.Span
}

// SketchSpec configures the randomized sketch fast path (tucker.Sketch):
// every tensor the decomposition consumes — X₁, X₂, and the stitched join
// — is replaced by a biased random sketch keeping roughly KeepFrac of its
// cells, cutting the nnz every downstream kernel pays for at a graceful
// accuracy cost. The zero value disables sketching.
type SketchSpec struct {
	// KeepFrac is the expected fraction of stored cells each sketch
	// retains, in (0, 1]. 0 disables sketching; 1 keeps every cell (the
	// decomposition is bit-identical to the unsketched run, and the
	// Result still carries a full-keep SketchReport).
	KeepFrac float64
	// Seed drives the per-cell keep decisions through a counter-based
	// hash. The three tensors sketch under distinct derived seeds
	// (Seed+1, Seed+2, Seed+3) so equal-shaped sub-tensors never share
	// coin flips. The whole decomposition is a pure function of
	// (partition, Options) — bit-identical for any Workers value.
	Seed int64
}

// SketchReport accounts for the sketch passes of one decomposition: the
// configuration plus per-tensor tucker.SketchStats. Every field is
// deterministic for a fixed partition and options.
type SketchReport struct {
	// KeepFrac and Seed echo the SketchSpec the run used.
	KeepFrac float64
	Seed     int64
	// Sub1, Sub2, and Join account for the X₁, X₂, and join sketches.
	Sub1, Sub2, Join tucker.SketchStats
}

// Result is an M2TD decomposition of the join tensor: Tucker factors in
// original mode order plus the recovered core.
type Result struct {
	// Factors holds one factor matrix per original tensor mode.
	Factors []*mat.Matrix
	// Core is the recovered core tensor G.
	Core *tensor.Dense
	// Join is the JE-stitched tensor the core was recovered from. Sketched
	// runs stitch the full join and recover the core from a sketch of it;
	// Join still holds the full join.
	Join *tensor.Sparse
	// Sketch accounts for the sketch passes when Options.Sketch was
	// enabled (nil otherwise).
	Sketch *SketchReport

	// Phase timings (the serial analogue of D-M2TD's three phases).
	SubDecompTime time.Duration
	StitchTime    time.Duration
	CoreTime      time.Duration
}

// Reconstruct expands the decomposition to the full tensor space:
// X̃ = G ×₁ U(1) ×₂ … ×ₙ U(N).
func (r *Result) Reconstruct() *tensor.Dense {
	return tensor.TuckerReconstruct(r.Core, r.Factors)
}

// Decompose runs M2TD over a PF-partitioned pair of sub-ensembles.
func Decompose(p *partition.Result, opts Options) (*Result, error) {
	//lint:allow ctxprop -- documented legacy wrapper: the non-ctx API is the root of its own context tree
	return DecomposeCtx(context.Background(), p, opts)
}

// DecomposeCtx is Decompose with cooperative cancellation, polled between
// the three phases (sub-decomposition, stitching, core recovery). A phase
// that has started always runs to completion — its kernels never observe
// the context — so cancellation leaves no partially assembled factor set
// or half-stitched join behind; an un-cancelled DecomposeCtx is
// bit-identical to Decompose.
func DecomposeCtx(ctx context.Context, p *partition.Result, opts Options) (*Result, error) {
	switch opts.Method {
	case AVG, CONCAT, SELECT:
	default:
		return nil, fmt.Errorf("core: unknown M2TD method %q", opts.Method)
	}
	order := p.Space.Order()
	if len(opts.Ranks) != order {
		return nil, fmt.Errorf("core: %d ranks for order-%d space", len(opts.Ranks), order)
	}
	ranks := tucker.ClipRanks(p.Space.Shape(), opts.Ranks)
	if f := opts.Sketch.KeepFrac; f < 0 || f > 1 {
		return nil, fmt.Errorf("core: sketch KeepFrac %v outside [0, 1]", f)
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 1: decompose the two low-order sub-tensors. Only the factor
	// matrices are needed; Gram matrices are retained for CONCAT fusion.
	// When sketching is enabled the phase first replaces both sub-tensors
	// with their sketches (in a shallow copy — the caller's partition is
	// never mutated), so every kernel below runs on the reduced nnz.
	// The phase span records each sub-tensor's kernel-plan cache deltas:
	// builds and hits depend only on the kernel invocation sequence (never
	// on Workers), so they are deterministic counters.
	subClock := stopwatch()
	fspan := opts.Span.Start("factors")
	var skReport *SketchReport
	dp := p
	if f := opts.Sketch.KeepFrac; f > 0 {
		skReport = &SketchReport{KeepFrac: f, Seed: opts.Sketch.Seed}
		if f == 1 {
			skReport.Sub1 = tucker.SketchStats{InputNNZ: p.Sub1.Tensor.NNZ(), Kept: p.Sub1.Tensor.NNZ()}
			skReport.Sub2 = tucker.SketchStats{InputNNZ: p.Sub2.Tensor.NNZ(), Kept: p.Sub2.Tensor.NNZ()}
		} else {
			var err error
			if dp, err = sketchSubs(p, opts, skReport, fspan); err != nil {
				return nil, err
			}
		}
	}
	fb1, fh1 := dp.Sub1.Tensor.PlanStats()
	fb2, fh2 := dp.Sub2.Tensor.PlanStats()
	fdone := fspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	factors := buildFactors(dp, opts.Method, ranks, opts.Workers, fspan)
	b1, h1 := dp.Sub1.Tensor.PlanStats()
	b2, h2 := dp.Sub2.Tensor.PlanStats()
	fspan.Set("plan_builds_x1", b1-fb1)
	fspan.Set("plan_hits_x1", h1-fh1)
	fspan.Set("plan_builds_x2", b2-fb2)
	fspan.Set("plan_hits_x2", h2-fh2)
	fdone()
	subTime := subClock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 2: JE-stitching.
	stitchClock := stopwatch()
	sspan := opts.Span.Start("stitch")
	sdone := sspan.WithVitals(nil)
	var j *tensor.Sparse
	if opts.ZeroJoin {
		j = stitch.ZeroJoin(p)
		sspan.Set("zero_join", 1)
	} else {
		j = stitch.Join(p)
	}
	sspan.Set("join_nnz", int64(j.NNZ()))
	sdone()
	stitchTime := stitchClock()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Phase 3: recover the core through the assembled factors. Sketched
	// runs project a sketch of the join (the result still reports the
	// full join on Result.Join).
	coreClock := stopwatch()
	cspan := opts.Span.Start("core")
	cj := j
	if skReport != nil {
		if f := opts.Sketch.KeepFrac; f == 1 {
			skReport.Join = tucker.SketchStats{InputNNZ: j.NNZ(), Kept: j.NNZ()}
		} else {
			jspan := cspan.Start("sketch_join")
			sk, stj, err := tucker.Sketch(j, tucker.SketchOptions{KeepFrac: f, Seed: opts.Sketch.Seed + 3, Workers: opts.Workers})
			if err != nil {
				return nil, err
			}
			stj.Record(jspan)
			jspan.Finish()
			skReport.Join = stj
			cj = sk
		}
	}
	cdone := cspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	coreT := tucker.CoreFromFactorsWorkers(cj, factors, opts.Workers)
	cspan.Set("cells", int64(len(coreT.Data)))
	cdone()
	coreTime := coreClock()

	return &Result{
		Factors:       factors,
		Core:          coreT,
		Join:          j,
		Sketch:        skReport,
		SubDecompTime: subTime,
		StitchTime:    stitchTime,
		CoreTime:      coreTime,
	}, nil
}

// sketchSubs replaces both sub-tensors with their biased random sketches
// in a shallow copy of the partition (the caller's Result is never
// mutated). The two sketches use distinct derived seeds so equal-shaped
// sub-tensors never share coin flips, and each records its stats on its
// own child span — created serially here, so the span tree stays
// deterministic.
func sketchSubs(p *partition.Result, opts Options, rep *SketchReport, span *obs.Span) (*partition.Result, error) {
	sketchOne := func(name string, x *tensor.Sparse, seed int64) (*tensor.Sparse, tucker.SketchStats, error) {
		ss := span.Start(name)
		sk, stats, err := tucker.Sketch(x, tucker.SketchOptions{KeepFrac: opts.Sketch.KeepFrac, Seed: seed, Workers: opts.Workers})
		if err != nil {
			return nil, stats, err
		}
		stats.Record(ss)
		ss.Finish()
		return sk, stats, nil
	}
	t1, st1, err := sketchOne("sketch_x1", p.Sub1.Tensor, opts.Sketch.Seed+1)
	if err != nil {
		return nil, err
	}
	t2, st2, err := sketchOne("sketch_x2", p.Sub2.Tensor, opts.Sketch.Seed+2)
	if err != nil {
		return nil, err
	}
	rep.Sub1, rep.Sub2 = st1, st2
	sub1, sub2 := *p.Sub1, *p.Sub2
	sub1.Tensor, sub2.Tensor = t1, t2
	out := *p
	out.Sub1, out.Sub2 = &sub1, &sub2
	return &out, nil
}

// buildFactors runs the sub-tensor decompositions and assembles the fused
// factor set in original mode order: pivot factors per the fusion method,
// free factors from the owning sub-tensor's HOSVD.
//
// The X₁ and X₂ decompositions are independent by construction, so every
// per-mode factor extraction — pivot modes (which read both sub-tensors)
// and the free modes of either side — is issued as one task on the shared
// worker pool and joined errgroup-style. Each task writes only its own
// factors[m] slot and every kernel inside is deterministic, so the result
// is bit-identical for any worker count.
//
// Per-mode sub-spans are created serially here, before the pool runs any
// task, so the span tree's child order (pivots, then free1, then free2 —
// each in Config order) is deterministic no matter how the pool schedules
// the tasks. Pivot-mode spans carry one x1/x2 child per sub-tensor kernel.
func buildFactors(p *partition.Result, method Method, ranks []int, workers int, span *obs.Span) []*mat.Matrix {
	cfg := p.Config
	k := len(cfg.Pivots)
	factors := make([]*mat.Matrix, len(ranks))
	tasks := make([]func(), 0, len(ranks))
	// Worker-budget split across the concurrent per-mode tasks; pivot
	// tasks split once more across their x1/x2 pair. Scheduling only —
	// the kernels are bit-stable for any worker count.
	inner := parallel.SplitWorkers(workers, len(ranks))
	pair := parallel.SplitWorkers(inner, 2)
	for i, m := range cfg.Pivots {
		i, m := i, m
		r := ranks[m]
		ms := span.Start(fmt.Sprintf("mode%d", m))
		ms.Set("rank", int64(r))
		ms.Set("pivot", 1)
		c1 := ms.Start("x1")
		c2 := ms.Start("x2")
		tasks = append(tasks, func() {
			defer ms.Finish()
			switch method {
			case AVG:
				var u1, u2 *mat.Matrix
				parallel.Do(inner,
					func() { defer c1.Finish(); u1 = tensor.LeadingModeVectorsWorkers(p.Sub1.Tensor, i, r, pair) },
					func() { defer c2.Finish(); u2 = tensor.LeadingModeVectorsWorkers(p.Sub2.Tensor, i, r, pair) },
				)
				factors[m] = mat.Average(u1, u2)
			case CONCAT:
				var g1, g2 *mat.Matrix
				parallel.Do(inner,
					func() { defer c1.Finish(); g1 = tensor.ModeGramWorkers(p.Sub1.Tensor, i, pair) },
					func() { defer c2.Finish(); g2 = tensor.ModeGramWorkers(p.Sub2.Tensor, i, pair) },
				)
				factors[m] = mat.LeadingEigenvectors(mat.Add(g1, g2), r)
			case SELECT:
				var u1, u2 *mat.Matrix
				parallel.Do(inner,
					func() { defer c1.Finish(); u1 = tensor.LeadingModeVectorsWorkers(p.Sub1.Tensor, i, r, pair) },
					func() { defer c2.Finish(); u2 = tensor.LeadingModeVectorsWorkers(p.Sub2.Tensor, i, r, pair) },
				)
				factors[m] = RowSelect(u1, u2)
			}
		})
	}
	for i, m := range cfg.Free1 {
		i, m := i, m
		ms := span.Start(fmt.Sprintf("mode%d", m))
		ms.Set("rank", int64(ranks[m]))
		ms.Set("sub", 1)
		tasks = append(tasks, func() {
			defer ms.Finish()
			factors[m] = tensor.LeadingModeVectorsWorkers(p.Sub1.Tensor, k+i, ranks[m], inner)
		})
	}
	for i, m := range cfg.Free2 {
		i, m := i, m
		ms := span.Start(fmt.Sprintf("mode%d", m))
		ms.Set("rank", int64(ranks[m]))
		ms.Set("sub", 2)
		tasks = append(tasks, func() {
			defer ms.Finish()
			factors[m] = tensor.LeadingModeVectorsWorkers(p.Sub2.Tensor, k+i, ranks[m], inner)
		})
	}
	parallel.Do(workers, tasks...)
	return factors
}

// RowSelect implements Algorithm 5: the fused factor matrix takes each row
// from whichever input matrix gives it the larger 2-norm (energy), i.e.
// from the sub-ensemble that represents that entity more strongly.
func RowSelect(u1, u2 *mat.Matrix) *mat.Matrix {
	if u1.Rows != u2.Rows || u1.Cols != u2.Cols {
		panic(fmt.Sprintf("core: RowSelect shape mismatch %d×%d vs %d×%d", u1.Rows, u1.Cols, u2.Rows, u2.Cols))
	}
	out := mat.New(u1.Rows, u1.Cols)
	for i := 0; i < u1.Rows; i++ {
		if mat.RowNorm(u1, i) >= mat.RowNorm(u2, i) {
			out.SetRow(i, u1.Row(i))
		} else {
			out.SetRow(i, u2.Row(i))
		}
	}
	return out
}
