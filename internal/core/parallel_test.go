package core

// Regression tests: an M2TD decomposition must be BIT-IDENTICAL for
// Options.Workers=1 and Workers=8 (the ISSUE's acceptance criterion). The
// concurrent X₁/X₂ sub-decompositions and the parallel kernels underneath
// all partition their output index spaces and preserve the serial
// floating-point accumulation order, so the worker count can only change
// wall-clock, never a single bit of the result.

import (
	"strconv"
	"testing"

	"repro/internal/tucker"
)

// resultEqualBits fails the test unless the two results carry bit-identical
// factors and cores.
func resultEqualBits(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if len(a.Factors) != len(b.Factors) {
		t.Fatalf("%s: %d vs %d factors", name, len(a.Factors), len(b.Factors))
	}
	for n, u := range a.Factors {
		w := b.Factors[n]
		if u.Rows != w.Rows || u.Cols != w.Cols {
			t.Fatalf("%s: factor %d shape %dx%d vs %dx%d", name, n, u.Rows, u.Cols, w.Rows, w.Cols)
		}
		for i, v := range u.Data {
			if v != w.Data[i] {
				t.Fatalf("%s: factor %d element %d differs: %v vs %v", name, n, i, v, w.Data[i])
			}
		}
	}
	if !a.Core.Shape.Equal(b.Core.Shape) {
		t.Fatalf("%s: core shape %v vs %v", name, a.Core.Shape, b.Core.Shape)
	}
	for i, v := range a.Core.Data {
		if v != b.Core.Data[i] {
			t.Fatalf("%s: core element %d differs: %v vs %v", name, i, v, b.Core.Data[i])
		}
	}
}

func TestDecomposeWorkersBitStable(t *testing.T) {
	p := tinyPartition(t, 1, 424)
	ranks := tucker.UniformRanks(5, 3)
	for _, m := range Methods() {
		t.Run(string(m), func(t *testing.T) {
			want, err := Decompose(p, Options{Method: m, Ranks: ranks, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			for _, w := range []int{2, 8} {
				got, err := Decompose(p, Options{Method: m, Ranks: ranks, Workers: w})
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				resultEqualBits(t, string(m)+" w="+strconv.Itoa(w), want, got)
			}
		})
	}
}

func TestDecomposeZeroJoinWorkersBitStable(t *testing.T) {
	p := tinyPartition(t, 1, 425)
	ranks := tucker.UniformRanks(5, 3)
	want, err := Decompose(p, Options{Method: AVG, Ranks: ranks, ZeroJoin: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompose(p, Options{Method: AVG, Ranks: ranks, ZeroJoin: true, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	resultEqualBits(t, "AVG zero-join", want, got)
}
