package core

import (
	"fmt"
	"sort"

	"repro/internal/mat"
)

// Loading is one mode entity's weight in a decomposition pattern.
type Loading struct {
	// Index is the grid index along the mode (a parameter value or
	// timestamp).
	Index int
	// Weight is the magnitude of the entity's coordinate in the requested
	// component.
	Weight float64
}

// ModeLoadings returns the entities of one tensor mode ranked by the
// magnitude of their loading in the given component (column) of that
// mode's factor matrix. This is the post-simulation analysis the paper
// motivates: the heaviest-loading parameter values are the ones that
// dominate the corresponding latent pattern of the ensemble.
func (r *Result) ModeLoadings(mode, component int) ([]Loading, error) {
	if mode < 0 || mode >= len(r.Factors) {
		return nil, fmt.Errorf("core: mode %d out of range [0, %d)", mode, len(r.Factors))
	}
	f := r.Factors[mode]
	if component < 0 || component >= f.Cols {
		return nil, fmt.Errorf("core: component %d out of range [0, %d)", component, f.Cols)
	}
	out := make([]Loading, f.Rows)
	for i := 0; i < f.Rows; i++ {
		w := f.At(i, component)
		if w < 0 {
			w = -w
		}
		out[i] = Loading{Index: i, Weight: w}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Weight > out[b].Weight })
	return out, nil
}

// ComponentStrengths returns the energy of each core slice along the
// given mode: out[c] = ‖G(mode = c)‖F, the strength with which the mode's
// c-th factor component participates in the joint patterns (the role the
// paper assigns to the core tensor).
func (r *Result) ComponentStrengths(mode int) ([]float64, error) {
	if mode < 0 || mode >= r.Core.Shape.Order() {
		return nil, fmt.Errorf("core: mode %d out of range [0, %d)", mode, r.Core.Shape.Order())
	}
	size := r.Core.Shape[mode]
	out := make([]float64, size)
	for c := 0; c < size; c++ {
		out[c] = r.Core.SliceMode(mode, c).Norm()
	}
	return out, nil
}

// EntityEnergy returns, per entity (row) of a mode's factor matrix, the
// total representation energy — M2TD-SELECT's selection criterion, exposed
// for analysis.
func (r *Result) EntityEnergy(mode int) ([]float64, error) {
	if mode < 0 || mode >= len(r.Factors) {
		return nil, fmt.Errorf("core: mode %d out of range [0, %d)", mode, len(r.Factors))
	}
	f := r.Factors[mode]
	out := make([]float64, f.Rows)
	for i := range out {
		out[i] = mat.RowNorm(f, i)
	}
	return out, nil
}
