package core

import "time"

// Wall-clock observability for the stage timings surfaced on Result
// (SubTime/StitchTime/CoreTime) and mirrored into Report timing fields.
//
// core is a bit-stable kernel package: the determinism analyzer
// (internal/lint) bans wall-clock reads here because scheduling-dependent
// values must never influence decomposition results. Stage timings are
// gauge-class observability — they are reported, never read back — so
// the two clock reads are confined to this helper and annotated. Code in
// this package must not call time.Now/time.Since directly; use stopwatch.

// stopwatch starts a wall-clock timer and returns a function yielding
// the elapsed time. The readings feed Result timing fields and span
// gauges only; no kernel consumes them.
func stopwatch() func() time.Duration {
	start := time.Now() //lint:allow determinism -- wall-clock stage timings feed Result/Report gauges only; no kernel result depends on them
	return func() time.Duration {
		return time.Since(start) //lint:allow determinism -- paired with stopwatch's start; gauge-class stage timing
	}
}
