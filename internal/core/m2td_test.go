package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/mat"
	"repro/internal/partition"
	"repro/internal/stitch"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

var doublePendulumPairs = [][2]int{{0, 2}, {1, 3}}

func tinyPartition(t *testing.T, freeFrac float64, seed int64) *partition.Result {
	t.Helper()
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = freeFrac
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRowSelectPicksHigherEnergy(t *testing.T) {
	u1 := mat.FromRows([][]float64{{3, 0}, {0, 0.1}})
	u2 := mat.FromRows([][]float64{{1, 1}, {2, 2}})
	out := RowSelect(u1, u2)
	// Row 0: ‖(3,0)‖ > ‖(1,1)‖ -> from u1. Row 1: ‖(0,0.1)‖ < ‖(2,2)‖ -> u2.
	if out.At(0, 0) != 3 || out.At(0, 1) != 0 {
		t.Fatalf("row 0 = %v", out.Row(0))
	}
	if out.At(1, 0) != 2 || out.At(1, 1) != 2 {
		t.Fatalf("row 1 = %v", out.Row(1))
	}
}

func TestRowSelectTieGoesToFirst(t *testing.T) {
	u1 := mat.FromRows([][]float64{{1, 0}})
	u2 := mat.FromRows([][]float64{{0, 1}})
	out := RowSelect(u1, u2)
	if out.At(0, 0) != 1 {
		t.Fatal("tie should keep u1's row (Algorithm 5 uses >=)")
	}
}

func TestRowSelectShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RowSelect shape mismatch did not panic")
		}
	}()
	RowSelect(mat.New(2, 2), mat.New(3, 2))
}

func TestDecomposeAllMethods(t *testing.T) {
	p := tinyPartition(t, 1, 110)
	ranks := tucker.UniformRanks(5, 3)
	for _, m := range Methods() {
		res, err := Decompose(p, Options{Method: m, Ranks: ranks})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(res.Factors) != 5 {
			t.Fatalf("%s: %d factors", m, len(res.Factors))
		}
		shape := p.Space.Shape()
		for mode, f := range res.Factors {
			wantRank := 3
			if shape[mode] < wantRank {
				wantRank = shape[mode]
			}
			if f.Rows != shape[mode] || f.Cols != wantRank {
				t.Fatalf("%s: factor %d dims %d×%d, want %d×%d", m, mode, f.Rows, f.Cols, shape[mode], wantRank)
			}
		}
		recon := res.Reconstruct()
		if !recon.Shape.Equal(shape) {
			t.Fatalf("%s: reconstruction shape %v", m, recon.Shape)
		}
		if recon.Norm() == 0 {
			t.Fatalf("%s: zero reconstruction", m)
		}
	}
}

func TestDecomposeRejectsBadOptions(t *testing.T) {
	p := tinyPartition(t, 1, 111)
	if _, err := Decompose(p, Options{Method: "bogus", Ranks: tucker.UniformRanks(5, 2)}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Decompose(p, Options{Method: AVG, Ranks: []int{2, 2}}); err == nil {
		t.Fatal("wrong rank count accepted")
	}
}

func TestDecomposeAccuracyBeatsConventional(t *testing.T) {
	// The paper's headline result (Table II): M2TD reconstruction is far
	// closer to the ground truth than HOSVD of a conventionally sampled
	// sparse ensemble with the same simulation budget.
	p := tinyPartition(t, 1, 112)
	space := p.Space
	y := space.GroundTruth()
	ranks := tucker.UniformRanks(5, 3)

	res, err := Decompose(p, Options{Method: SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	m2tdErr := res.Reconstruct().Sub(y).Norm() / y.Norm()

	rng := rand.New(rand.NewSource(113))
	sims := ensemble.RandomSample(space, p.NumSims, rng)
	se := ensemble.Encode(space, sims)
	convErr := tucker.HOSVD(se.Tensor, ranks).RelativeError(y)

	if m2tdErr >= convErr {
		t.Fatalf("M2TD error %v not better than conventional %v", m2tdErr, convErr)
	}
	if m2tdErr >= 1 {
		t.Fatalf("M2TD relative error %v >= 1", m2tdErr)
	}
}

func TestConcatEquivalentToExplicitConcatenation(t *testing.T) {
	// The Gram-sum optimisation must give the same pivot subspace as the
	// literal column-wise concatenation of the two matricizations.
	p := tinyPartition(t, 1, 114)
	i := 0 // pivot sub-mode
	r := 3
	g := mat.Add(tensor.ModeGram(p.Sub1.Tensor, i), tensor.ModeGram(p.Sub2.Tensor, i))
	uGram := mat.LeadingEigenvectors(g, r)

	m1 := tensor.Matricize(p.Sub1.Tensor.ToDense(), i)
	m2 := tensor.Matricize(p.Sub2.Tensor.ToDense(), i)
	cat := mat.ConcatCols(m1, m2)
	uCat := mat.LeadingLeftSingularVectors(cat, r)

	// Compare projectors (columns defined up to sign).
	pGram := mat.MulTransB(uGram, uGram)
	pCat := mat.MulTransB(uCat, uCat)
	if !pGram.Equal(pCat, 1e-8) {
		t.Fatal("Gram-sum CONCAT subspace differs from explicit concatenation")
	}
}

func TestDecomposeZeroJoinOption(t *testing.T) {
	p := tinyPartition(t, 0.4, 115)
	ranks := tucker.UniformRanks(5, 2)
	plain, err := Decompose(p, Options{Method: SELECT, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	zero, err := Decompose(p, Options{Method: SELECT, Ranks: ranks, ZeroJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if zero.Join.NNZ() <= plain.Join.NNZ() {
		t.Fatalf("zero-join NNZ %d not larger than join %d", zero.Join.NNZ(), plain.Join.NNZ())
	}
}

func TestDecomposeCoreMatchesManualProjection(t *testing.T) {
	p := tinyPartition(t, 1, 116)
	ranks := tucker.UniformRanks(5, 2)
	res, err := Decompose(p, Options{Method: AVG, Ranks: ranks})
	if err != nil {
		t.Fatal(err)
	}
	j := stitch.Join(p)
	manual := tensor.MultiTTMSparse(j, tensor.TransposeAll(res.Factors))
	if !manual.Equal(res.Core, 1e-10) {
		t.Fatal("core differs from manual projection of the join tensor")
	}
}

func TestDecomposeTimingsPopulated(t *testing.T) {
	p := tinyPartition(t, 1, 117)
	res, err := Decompose(p, Options{Method: SELECT, Ranks: tucker.UniformRanks(5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if res.SubDecompTime < 0 || res.StitchTime <= 0 || res.CoreTime <= 0 {
		t.Fatalf("timings: %v %v %v", res.SubDecompTime, res.StitchTime, res.CoreTime)
	}
}

func TestSelectFactorRowsComeFromInputs(t *testing.T) {
	// Every row of a SELECT-fused pivot factor equals the corresponding
	// row of one of the two sub-decomposition factors.
	p := tinyPartition(t, 1, 118)
	r := 3
	u1 := tensor.LeadingModeVectors(p.Sub1.Tensor, 0, r)
	u2 := tensor.LeadingModeVectors(p.Sub2.Tensor, 0, r)
	fused := RowSelect(u1, u2)
	for i := 0; i < fused.Rows; i++ {
		from1 := true
		from2 := true
		for c := 0; c < fused.Cols; c++ {
			if math.Abs(fused.At(i, c)-u1.At(i, c)) > 1e-15 {
				from1 = false
			}
			if math.Abs(fused.At(i, c)-u2.At(i, c)) > 1e-15 {
				from2 = false
			}
		}
		if !from1 && !from2 {
			t.Fatalf("fused row %d matches neither input", i)
		}
	}
}

func TestMethodsOrder(t *testing.T) {
	ms := Methods()
	if len(ms) != 3 || ms[0] != AVG || ms[1] != CONCAT || ms[2] != SELECT {
		t.Fatalf("Methods() = %v", ms)
	}
}

func TestDecomposeMultiplePivots(t *testing.T) {
	// M2TD over a k=2 pivot partition: the fused factor set must still
	// cover every original mode and reconstruct sensibly.
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 5, 4)
	cfg := partition.Config{
		Pivots:    []int{4, 0},
		Free1:     []int{1, 3},
		Free2:     []int{2},
		PivotFrac: 1,
		FreeFrac:  1,
	}
	p, err := partition.Generate(space, cfg, rand.New(rand.NewSource(119)))
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		res, err := Decompose(p, Options{Method: m, Ranks: tucker.UniformRanks(5, 2)})
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		for mode, f := range res.Factors {
			if f == nil {
				t.Fatalf("%s: mode %d has no factor", m, mode)
			}
		}
		y := space.GroundTruth()
		relErr := res.Reconstruct().Sub(y).Norm() / y.Norm()
		if relErr >= 1 {
			t.Fatalf("%s: k=2 relative error %v", m, relErr)
		}
	}
}

func TestModeLoadingsSortedAndComplete(t *testing.T) {
	p := tinyPartition(t, 1, 126)
	res, err := Decompose(p, Options{Method: SELECT, Ranks: tucker.UniformRanks(5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	for mode := 0; mode < 5; mode++ {
		loadings, err := res.ModeLoadings(mode, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(loadings) != p.Space.Shape()[mode] {
			t.Fatalf("mode %d: %d loadings", mode, len(loadings))
		}
		for i := 1; i < len(loadings); i++ {
			if loadings[i].Weight > loadings[i-1].Weight+1e-15 {
				t.Fatalf("mode %d: loadings not sorted", mode)
			}
		}
		seen := map[int]bool{}
		for _, l := range loadings {
			if l.Weight < 0 || seen[l.Index] {
				t.Fatalf("mode %d: bad loading %+v", mode, l)
			}
			seen[l.Index] = true
		}
	}
	if _, err := res.ModeLoadings(9, 0); err == nil {
		t.Fatal("out-of-range mode accepted")
	}
	if _, err := res.ModeLoadings(0, 9); err == nil {
		t.Fatal("out-of-range component accepted")
	}
}

func TestComponentStrengths(t *testing.T) {
	p := tinyPartition(t, 1, 127)
	res, err := Decompose(p, Options{Method: SELECT, Ranks: tucker.UniformRanks(5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	strengths, err := res.ComponentStrengths(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(strengths) != res.Core.Shape[0] {
		t.Fatalf("%d strengths", len(strengths))
	}
	// Sum of squared slice norms equals the squared core norm.
	var total float64
	for _, s := range strengths {
		total += s * s
	}
	want := res.Core.Norm()
	if math.Abs(math.Sqrt(total)-want) > 1e-9 {
		t.Fatalf("slice energies %v inconsistent with core norm %v", math.Sqrt(total), want)
	}
	if _, err := res.ComponentStrengths(9); err == nil {
		t.Fatal("out-of-range mode accepted")
	}
}

func TestEntityEnergy(t *testing.T) {
	p := tinyPartition(t, 1, 128)
	res, err := Decompose(p, Options{Method: SELECT, Ranks: tucker.UniformRanks(5, 2)})
	if err != nil {
		t.Fatal(err)
	}
	energy, err := res.EntityEnergy(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(energy) != p.Space.Shape()[0] {
		t.Fatalf("%d energies", len(energy))
	}
	for _, e := range energy {
		if e < 0 {
			t.Fatalf("negative energy %v", e)
		}
	}
	if _, err := res.EntityEnergy(-1); err == nil {
		t.Fatal("negative mode accepted")
	}
}
