package core

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// DecomposeFactored computes the same M2TD decomposition as Decompose
// without ever materialising the join tensor, exploiting the product
// structure of PF-partitioned sub-ensembles (every sampled pivot
// configuration carries the same sampled free-configuration set, which
// partition.Generate guarantees).
//
// Under that structure the join tensor factors as
//
//	J(p, f1, f2) = ½·(X₁(p, f1) + X₂(p, f2))   over P × E₁ × E₂,
//
// so its projection through the factor matrices separates:
//
//	G = ½·( G₁ ⊗ s₂  +  G₂ ⊗ s₁ )
//
// where G₁ = X₁ ×ₙ Uᵀ is sub-tensor 1 projected through its own modes'
// fused factors (an O(nnz(X₁)) computation), and s₂ is the sum over
// sampled free-2 configurations of the outer products of their factor
// rows. Zero-join stitching replaces the sampled sums with full-grid sums,
// which further separate into per-mode column sums.
//
// The asymptotic win is what unlocks paper-scale resolutions: Decompose
// costs O(P·E₁·E₂) to build and project J (1.6×10⁹ cells at the paper's
// resolution 70), DecomposeFactored costs O(nnz(X₁)+nnz(X₂)+E·r^|F|)
// (≈3.4×10⁵ cells at the same resolution).
//
// The returned Result has Join == nil.
func DecomposeFactored(p *partition.Result, opts Options) (*Result, error) {
	switch opts.Method {
	case AVG, CONCAT, SELECT:
	default:
		return nil, fmt.Errorf("core: unknown M2TD method %q", opts.Method)
	}
	order := p.Space.Order()
	if len(opts.Ranks) != order {
		return nil, fmt.Errorf("core: %d ranks for order-%d space", len(opts.Ranks), order)
	}
	if opts.Sketch.KeepFrac != 0 {
		// Sketching drops cells, which destroys the exact one-cell-per-
		// (pivot × free) product structure the factorisation relies on.
		return nil, fmt.Errorf("core: sketching is incompatible with DecomposeFactored (the sketch breaks the P×E product structure)")
	}
	if err := checkProductStructure(p); err != nil {
		return nil, err
	}
	ranks := tucker.ClipRanks(p.Space.Shape(), opts.Ranks)
	cfg := p.Config
	k := len(cfg.Pivots)

	subClock := stopwatch()
	fspan := opts.Span.Start("factors")
	fb1, fh1 := p.Sub1.Tensor.PlanStats()
	fb2, fh2 := p.Sub2.Tensor.PlanStats()
	fdone := fspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	factors := buildFactors(p, opts.Method, ranks, opts.Workers, fspan)
	b1, h1 := p.Sub1.Tensor.PlanStats()
	b2, h2 := p.Sub2.Tensor.PlanStats()
	fspan.Set("plan_builds_x1", b1-fb1)
	fspan.Set("plan_hits_x1", h1-fh1)
	fspan.Set("plan_builds_x2", b2-fb2)
	fspan.Set("plan_hits_x2", h2-fh2)
	fdone()
	subTime := subClock()

	coreClock := stopwatch()
	cspan := opts.Span.Start("core")
	cdone := cspan.WithVitals(map[string]func() int64{"strips": parallel.Strips})
	// Project each sub-tensor through its own modes' factors; the two
	// projections are independent and run concurrently on the shared pool.
	var g1, g2 *tensor.Dense
	// Split the budget across the concurrent projections (scheduling only;
	// the TTM kernels are bit-stable for any worker count).
	pair := parallel.SplitWorkers(opts.Workers, 2)
	parallel.Do(opts.Workers,
		func() { g1 = projectSub(p.Sub1, factors, pair) },
		func() { g2 = projectSub(p.Sub2, factors, pair) },
	)

	// Free-mode row sums: sampled configurations for plain join, the full
	// grids for zero-join.
	var s1, s2 *tensor.Dense
	if opts.ZeroJoin {
		s1 = fullRowSum(factors, cfg.Free1)
		s2 = fullRowSum(factors, cfg.Free2)
	} else {
		s1 = sampledRowSum(factors, cfg.Free1, p.Free1Configs)
		s2 = sampledRowSum(factors, cfg.Free2, p.Free2Configs)
	}

	coreT := assembleFactoredCore(cfg, ranks, k, g1, g2, s1, s2)
	cspan.Set("cells", int64(len(coreT.Data)))
	cspan.Set("factored", 1)
	cdone()
	coreTime := coreClock()

	return &Result{
		Factors:       factors,
		Core:          coreT,
		Join:          nil,
		SubDecompTime: subTime,
		CoreTime:      coreTime,
	}, nil
}

// checkProductStructure verifies that each sub-ensemble stores exactly one
// cell per (pivot configuration × free configuration) pair — the structure
// the factorisation relies on.
func checkProductStructure(p *partition.Result) error {
	if len(p.PivotConfigs) == 0 || len(p.Free1Configs) == 0 || len(p.Free2Configs) == 0 {
		return fmt.Errorf("core: DecomposeFactored requires the sampled configuration lists from partition.Generate")
	}
	if want := len(p.PivotConfigs) * len(p.Free1Configs); p.Sub1.Tensor.NNZ() != want {
		return fmt.Errorf("core: sub-ensemble 1 has %d cells, want %d (P×E product structure)", p.Sub1.Tensor.NNZ(), want)
	}
	if want := len(p.PivotConfigs) * len(p.Free2Configs); p.Sub2.Tensor.NNZ() != want {
		return fmt.Errorf("core: sub-ensemble 2 has %d cells, want %d (P×E product structure)", p.Sub2.Tensor.NNZ(), want)
	}
	return nil
}

// projectSub computes X ×ₙ Uᵀ over all of a sub-tensor's modes, with U
// taken from the fused factor set via the sub-tensor's mode mapping.
func projectSub(sub *partition.SubEnsemble, factors []*mat.Matrix, workers int) *tensor.Dense {
	ms := make([]*mat.Matrix, len(sub.Modes))
	for i, m := range sub.Modes {
		ms[i] = mat.Transpose(factors[m])
	}
	return tensor.MultiTTMSparseWorkers(sub.Tensor, ms, workers)
}

// sampledRowSum accumulates Σ_{config} ⊗_i U(modes_i)(config_i, ·) over the
// sampled free configurations, as a dense tensor over the modes' ranks.
func sampledRowSum(factors []*mat.Matrix, modes []int, configs [][]int) *tensor.Dense {
	shape := make(tensor.Shape, len(modes))
	for i, m := range modes {
		shape[i] = factors[m].Cols
	}
	out := tensor.NewDense(shape)
	idx := make([]int, len(modes))
	for _, config := range configs {
		// Accumulate the outer product of the factor rows for this config.
		var walk func(pos int, coeff float64)
		walk = func(pos int, coeff float64) {
			if pos == len(modes) {
				//lint:allow quarantine -- kernel accumulation into a freshly allocated Dense; factor rows come from quarantined inputs, so coeff is finite
				out.Data[shape.LinearIndex(idx)] += coeff
				return
			}
			row := factors[modes[pos]].Row(config[pos])
			for r, v := range row {
				idx[pos] = r
				walk(pos+1, coeff*v)
			}
		}
		walk(0, 1)
	}
	return out
}

// fullRowSum is the zero-join variant: the sum over the full grid
// separates into per-mode factor column sums, whose outer product it
// returns.
func fullRowSum(factors []*mat.Matrix, modes []int) *tensor.Dense {
	sums := make([][]float64, len(modes))
	shape := make(tensor.Shape, len(modes))
	for i, m := range modes {
		f := factors[m]
		shape[i] = f.Cols
		col := make([]float64, f.Cols)
		for row := 0; row < f.Rows; row++ {
			for r, v := range f.Row(row) {
				col[r] += v
			}
		}
		sums[i] = col
	}
	out := tensor.NewDense(shape)
	idx := make([]int, len(modes))
	var walk func(pos int, coeff float64)
	walk = func(pos int, coeff float64) {
		if pos == len(modes) {
			//lint:allow quarantine -- kernel write into a freshly allocated Dense; per-mode column sums of quarantined factors are finite
			out.Data[shape.LinearIndex(idx)] = coeff
			return
		}
		for r, v := range sums[pos] {
			idx[pos] = r
			walk(pos+1, coeff*v)
		}
	}
	walk(0, 1)
	return out
}

// assembleFactoredCore builds the original-mode-order core from the two
// projected sub-tensors and the free-mode row sums:
// G = ½·(G₁ ⊗ s₂ + G₂ ⊗ s₁).
func assembleFactoredCore(cfg partition.Config, ranks []int, k int, g1, g2, s1, s2 *tensor.Dense) *tensor.Dense {
	coreShape := make(tensor.Shape, len(ranks))
	copy(coreShape, ranks)
	out := tensor.NewDense(coreShape)

	idx := make([]int, len(ranks))
	sub1Idx := make([]int, k+len(cfg.Free1))
	sub2Idx := make([]int, k+len(cfg.Free2))
	f1Idx := make([]int, len(cfg.Free1))
	f2Idx := make([]int, len(cfg.Free2))
	for lin := range out.Data {
		coreShape.MultiIndex(lin, idx)
		for i, m := range cfg.Pivots {
			sub1Idx[i] = idx[m]
			sub2Idx[i] = idx[m]
		}
		for i, m := range cfg.Free1 {
			sub1Idx[k+i] = idx[m]
			f1Idx[i] = idx[m]
		}
		for i, m := range cfg.Free2 {
			sub2Idx[k+i] = idx[m]
			f2Idx[i] = idx[m]
		}
		v := g1.Data[g1.Shape.LinearIndex(sub1Idx)]*s2.Data[s2.Shape.LinearIndex(f2Idx)] +
			g2.Data[g2.Shape.LinearIndex(sub2Idx)]*s1.Data[s1.Shape.LinearIndex(f1Idx)]
		//lint:allow quarantine -- kernel write into a freshly allocated core tensor; both projections derive from quarantined inputs
		out.Data[lin] = v / 2
	}
	return out
}
