package stitch

import (
	"math/rand"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// paramPivotResult partitions with a parameter-mode pivot (φ1) instead of
// the timestamp default.
func paramPivotResult(t *testing.T, seed int64) *partition.Result {
	t.Helper()
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 4, 3)
	cfg := partition.DefaultConfig(5, 0, doublePendulumPairs)
	cfg.FreeFrac = 0.5
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// bitsEqualSparse asserts identical COO storage: entry order, indices, and
// values, bit for bit.
func bitsEqualSparse(t *testing.T, name string, a, b *tensor.Sparse) {
	t.Helper()
	if !a.Shape.Equal(b.Shape) {
		t.Fatalf("%s: shape %v vs %v", name, a.Shape, b.Shape)
	}
	if a.NNZ() != b.NNZ() {
		t.Fatalf("%s: NNZ %d vs %d", name, a.NNZ(), b.NNZ())
	}
	for i, v := range a.Idx {
		if v != b.Idx[i] {
			t.Fatalf("%s: Idx[%d] = %d vs %d (entry order differs)", name, i, v, b.Idx[i])
		}
	}
	for i, v := range a.Vals {
		if v != b.Vals[i] {
			t.Fatalf("%s: Vals[%d] = %v vs %v (not bit-identical)", name, i, v, b.Vals[i])
		}
	}
}

// TestSortMergeJoinParity checks that the sort-merge Join emits COO
// storage identical to the retained hash-join reference across randomized
// ensembles of varying density.
func TestSortMergeJoinParity(t *testing.T) {
	for _, freeFrac := range []float64{0.15, 0.25, 0.5, 0.75, 1} {
		for seed := int64(200); seed < 205; seed++ {
			res := tinyResult(t, freeFrac, seed)
			bitsEqualSparse(t, "Join", Join(res), stitchHashJoin(res, false))
		}
	}
}

// TestSortMergeZeroJoinParity does the same for ZeroJoin, whose emission
// order additionally interleaves zero-join extensions and a sub-2-only
// tail pass.
func TestSortMergeZeroJoinParity(t *testing.T) {
	for _, freeFrac := range []float64{0.15, 0.25, 0.5, 1} {
		for seed := int64(300); seed < 305; seed++ {
			res := tinyResult(t, freeFrac, seed)
			bitsEqualSparse(t, "ZeroJoin", ZeroJoin(res), stitchHashJoin(res, true))
		}
	}
}

// TestSortMergeParityParameterPivot covers the parameter-mode pivot
// layout, where the free modes are split differently than the
// timestamp-pivot default.
func TestSortMergeParityParameterPivot(t *testing.T) {
	res := paramPivotResult(t, 101)
	bitsEqualSparse(t, "Join/param-pivot", Join(res), stitchHashJoin(res, false))
	bitsEqualSparse(t, "ZeroJoin/param-pivot", ZeroJoin(res), stitchHashJoin(res, true))
}

func TestLocalKeyPacksThreeModes(t *testing.T) {
	// Three modes at the radix boundary must pack without panicking and
	// remain distinct.
	a := localKey([]int{localRadix - 1, 0, 1})
	b := localKey([]int{localRadix - 1, 0, 2})
	if a == b {
		t.Fatal("distinct free configurations collided")
	}
	if got := localKey(nil); got != 0 {
		t.Fatalf("empty free index key = %d, want 0", got)
	}
}

func TestLocalKeyRejectsFourModes(t *testing.T) {
	// Four modes at radix 2^20 exceed 63 bits; localKey must refuse loudly
	// rather than wrap and silently corrupt zero-join membership tests.
	defer func() {
		if recover() == nil {
			t.Fatal("localKey accepted 4 free modes; silent key collisions possible")
		}
	}()
	localKey([]int{1, 2, 3, 4})
}

func TestLocalKeyRejectsOversizedIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("localKey accepted an index >= radix")
		}
	}()
	localKey([]int{localRadix})
}
