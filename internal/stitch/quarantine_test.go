package stitch

import (
	"math"
	"testing"
)

// TestJoinPropagatesQuarantine verifies the divergence quarantine survives
// stitching: when a sub-ensemble rejects non-finite cells, the join tensor
// does too, so a NaN written directly into a sub-tensor's storage (past
// the ingest guard) is dropped at emission instead of averaging into the
// shared pivots.
func TestJoinPropagatesQuarantine(t *testing.T) {
	res := tinyResult(t, 1, 97)
	if !res.Sub1.Tensor.RejectNonFinite || !res.Sub2.Tensor.RejectNonFinite {
		t.Fatalf("Generate no longer arms the quarantine on sub-tensors")
	}

	clean := Join(res)

	// Poison one sub-1 entry behind the guard. Every matched pair built
	// from it would average to NaN.
	res.Sub1.Tensor.Vals[0] = math.NaN()
	res.Sub1.Tensor.InvalidatePlans()

	j := Join(res)
	if !j.RejectNonFinite {
		t.Fatalf("join tensor did not inherit RejectNonFinite")
	}
	if j.Rejected == 0 {
		t.Fatalf("poisoned pairs were not quarantined")
	}
	for _, v := range j.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %v stored in join tensor", v)
		}
	}
	if j.NNZ()+j.Rejected != clean.NNZ() {
		t.Fatalf("quarantine accounting off: %d stored + %d rejected != %d clean cells",
			j.NNZ(), j.Rejected, clean.NNZ())
	}
}

// TestZeroJoinPropagatesQuarantine does the same for the zero-join: the
// poisoned cell's zero-join extensions (v/2) are quarantined too.
func TestZeroJoinPropagatesQuarantine(t *testing.T) {
	res := tinyResult(t, 0.5, 98)
	clean := ZeroJoin(res)

	res.Sub2.Tensor.Vals[0] = math.Inf(1)
	res.Sub2.Tensor.InvalidatePlans()

	j := ZeroJoin(res)
	if j.Rejected == 0 {
		t.Fatalf("poisoned cells were not quarantined")
	}
	for _, v := range j.Vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite value %v stored in zero-join tensor", v)
		}
	}
	if j.NNZ()+j.Rejected != clean.NNZ() {
		t.Fatalf("quarantine accounting off: %d stored + %d rejected != %d clean cells",
			j.NNZ(), j.Rejected, clean.NNZ())
	}
}
