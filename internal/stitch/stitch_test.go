package stitch

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/partition"
)

var doublePendulumPairs = [][2]int{{0, 2}, {1, 3}}

func tinyResult(t *testing.T, freeFrac float64, seed int64) *partition.Result {
	t.Helper()
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 4, 3)
	cfg := partition.DefaultConfig(5, 4, doublePendulumPairs)
	cfg.FreeFrac = freeFrac
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestJoinFullDensitySize(t *testing.T) {
	res := tinyResult(t, 1, 90)
	j := Join(res)
	// P · E1 · E2 = 3 timestamps × 16 × 16 free combos.
	if got, want := j.NNZ(), 3*16*16; got != want {
		t.Fatalf("join NNZ = %d, want %d", got, want)
	}
	if !j.Shape.Equal(res.Space.Shape()) {
		t.Fatalf("join shape %v != space shape %v", j.Shape, res.Space.Shape())
	}
}

func TestJoinValuesAreAverages(t *testing.T) {
	res := tinyResult(t, 1, 91)
	j := Join(res)
	// Reconstruct the expected average for a handful of cells directly
	// from the sub-tensors. Sub modes: pivots first.
	sub1 := res.Sub1.Tensor.ToDense()
	sub2 := res.Sub2.Tensor.ToDense()
	cfg := res.Config
	count := 0
	j.Each(func(idx []int, v float64) {
		if count > 50 {
			return
		}
		count++
		i1 := make([]int, 3)
		i1[0] = idx[cfg.Pivots[0]]
		for i, m := range cfg.Free1 {
			i1[1+i] = idx[m]
		}
		i2 := make([]int, 3)
		i2[0] = idx[cfg.Pivots[0]]
		for i, m := range cfg.Free2 {
			i2[1+i] = idx[m]
		}
		want := (sub1.At(i1...) + sub2.At(i2...)) / 2
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("join cell %v = %v, want %v", idx, v, want)
		}
	})
}

func TestJoinEffectiveDensityBeatsUnion(t *testing.T) {
	// The core motivation (Figure 6): the join has far more cells than the
	// union of sub-ensemble cells, for the same simulation budget.
	res := tinyResult(t, 1, 92)
	j := Join(res)
	unionCells := res.Sub1.Tensor.NNZ() + res.Sub2.Tensor.NNZ()
	if j.NNZ() <= unionCells {
		t.Fatalf("join NNZ %d not larger than union %d", j.NNZ(), unionCells)
	}
}

func TestJoinReducedDensity(t *testing.T) {
	res := tinyResult(t, 0.25, 93)
	j := Join(res)
	// E = ceil(0.25·16) = 4 per side: P·E² = 3·16.
	if got, want := j.NNZ(), 3*4*4; got != want {
		t.Fatalf("join NNZ = %d, want %d", got, want)
	}
}

func TestZeroJoinFullDensityEqualsJoin(t *testing.T) {
	// At full sub-ensemble density there are no missing partners, so
	// zero-join and join coincide.
	res := tinyResult(t, 1, 94)
	j := Join(res)
	zj := ZeroJoin(res)
	if j.NNZ() != zj.NNZ() {
		t.Fatalf("zero-join NNZ %d != join NNZ %d at full density", zj.NNZ(), j.NNZ())
	}
	if math.Abs(j.Norm()-zj.Norm()) > 1e-12 {
		t.Fatal("zero-join values differ from join at full density")
	}
}

func TestZeroJoinDensityBoost(t *testing.T) {
	res := tinyResult(t, 0.25, 95)
	j := Join(res)
	zj := ZeroJoin(res)
	// Zero-join: matched P·E² plus 2·P·E·(F−E) half-cells.
	p, e, f := 3, 4, 16
	want := p*e*e + 2*p*e*(f-e)
	if zj.NNZ() != want {
		t.Fatalf("zero-join NNZ = %d, want %d", zj.NNZ(), want)
	}
	if zj.NNZ() <= j.NNZ() {
		t.Fatal("zero-join did not boost density")
	}
}

func TestZeroJoinHalfValues(t *testing.T) {
	res := tinyResult(t, 0.25, 96)
	zj := ZeroJoin(res)
	sub1 := res.Sub1.Tensor.ToDense()
	sub2 := res.Sub2.Tensor.ToDense()
	cfg := res.Config
	zj.Each(func(idx []int, v float64) {
		i1 := []int{idx[cfg.Pivots[0]], idx[cfg.Free1[0]], idx[cfg.Free1[1]]}
		i2 := []int{idx[cfg.Pivots[0]], idx[cfg.Free2[0]], idx[cfg.Free2[1]]}
		x1 := sub1.At(i1...)
		x2 := sub2.At(i2...)
		// Dense sub-tensors have 0 at unsampled coordinates; since real
		// simulation distances are almost surely nonzero, a 0 marks a
		// missing partner and the expected value is the zero-join average.
		want := (x1 + x2) / 2
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("zero-join cell %v = %v, want %v", idx, v, want)
		}
	})
}

func TestJoinDeterministic(t *testing.T) {
	res := tinyResult(t, 0.5, 97)
	a := Join(res)
	b := Join(res)
	if a.NNZ() != b.NNZ() {
		t.Fatal("join size varies between runs")
	}
	for e := 0; e < a.NNZ(); e++ {
		ia, va := a.Entry(e)
		ib, vb := b.Entry(e)
		if va != vb {
			t.Fatal("join entry values vary between runs")
		}
		for k := range ia {
			if ia[k] != ib[k] {
				t.Fatal("join entry order varies between runs")
			}
		}
	}
}

func TestJoinParameterPivot(t *testing.T) {
	// Pivot on a parameter mode (φ1): join must still cover all 5 modes.
	space := ensemble.NewSpace(dynsys.NewDoublePendulum(), 4, 3)
	cfg := partition.DefaultConfig(5, 0, doublePendulumPairs)
	res, err := partition.Generate(space, cfg, rand.New(rand.NewSource(98)))
	if err != nil {
		t.Fatal(err)
	}
	j := Join(res)
	if j.NNZ() == 0 {
		t.Fatal("empty join for parameter pivot")
	}
	// Every join cell agrees with the average of its sub-cells; just check
	// the shape and coordinate bounds here.
	if !j.Shape.Equal(space.Shape()) {
		t.Fatalf("join shape %v", j.Shape)
	}
}

func TestJoinApproximatesGroundTruth(t *testing.T) {
	// The stitched tensor should approximate Y far better than a guess of
	// zero: relative error below 1.
	res := tinyResult(t, 1, 99)
	j := Join(res).ToDense()
	y := res.Space.GroundTruth()
	relErr := j.Sub(y).Norm() / y.Norm()
	if relErr >= 1 {
		t.Fatalf("join relative error %v, want < 1", relErr)
	}
}
