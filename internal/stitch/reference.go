package stitch

import (
	"sort"

	"repro/internal/partition"
	"repro/internal/tensor"
)

// This file retains the original hash-join stitching implementation
// verbatim. It is the executable specification for the sort-merge join in
// stitch.go: the parity tests assert that Join/ZeroJoin produce COO
// storage (entry order, indices, and values) identical to
// stitchHashJoin's. Test-only; do not use in pipelines.

// subEntryRef is one sub-ensemble cell split into pivot part and free part.
type subEntryRef struct {
	free []int
	val  float64
}

// indexRef groups a sub-ensemble's cells by pivot configuration.
func indexRef(sub *partition.SubEnsemble) map[int][]subEntryRef {
	k := sub.NumPivots
	out := make(map[int][]subEntryRef)
	sub.Tensor.Each(func(idx []int, v float64) {
		key := pivotKey(sub.Tensor.Shape, idx, k)
		out[key] = append(out[key], subEntryRef{free: append([]int(nil), idx[k:]...), val: v})
	})
	return out
}

// pivotIdxFromKeyRef inverts pivotKey into the pivot coordinates.
func pivotIdxFromKeyRef(shape tensor.Shape, key, k int) []int {
	idx := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		idx[i] = key % shape[i]
		key /= shape[i]
	}
	return idx
}

// stitchHashJoin is the pre-sort-merge stitch: hash map of pivot groups,
// per-entry free-coordinate copies, sorted-key iteration.
func stitchHashJoin(res *partition.Result, zero bool) *tensor.Sparse {
	space := res.Space
	cfg := res.Config
	k := len(cfg.Pivots)
	j := tensor.NewSparse(space.Shape())

	idx1 := indexRef(res.Sub1)
	idx2 := indexRef(res.Sub2)

	matched := 0
	//lint:allow determinism -- commutative count accumulation; map iteration order cannot affect the sum
	for key, entries1 := range idx1 {
		matched += len(entries1) * len(idx2[key])
	}
	//lint:allow quarantine -- capacity preallocation on a freshly created join tensor; entries enter via the quarantine-checked Append path
	j.Idx = make([]int, 0, matched*space.Order())
	//lint:allow quarantine -- capacity preallocation on a freshly created join tensor; entries enter via the quarantine-checked Append path
	j.Vals = make([]float64, 0, matched)

	full := make([]int, space.Order())
	emit := func(pivotIdx, free1, free2 []int, v float64) {
		for i, m := range cfg.Pivots {
			full[m] = pivotIdx[i]
		}
		if free1 != nil {
			for i, m := range cfg.Free1 {
				full[m] = free1[i]
			}
		}
		if free2 != nil {
			for i, m := range cfg.Free2 {
				full[m] = free2[i]
			}
		}
		j.Append(full, v)
	}

	keys1 := sortedKeysRef(idx1)
	shape1 := res.Sub1.Tensor.Shape
	for _, key := range keys1 {
		entries1 := idx1[key]
		entries2 := idx2[key]
		pivotIdx := pivotIdxFromKeyRef(shape1, key, k)
		for _, e1 := range entries1 {
			for _, e2 := range entries2 {
				emit(pivotIdx, e1.free, e2.free, (e1.val+e2.val)/2)
			}
		}
		if !zero {
			continue
		}
		sampled2 := freeSetRef(entries2)
		eachFreeConfig(space, cfg.Free2, func(f2 []int) {
			if sampled2[localKey(f2)] {
				return
			}
			for _, e1 := range entries1 {
				emit(pivotIdx, e1.free, f2, e1.val/2)
			}
		})
		sampled1 := freeSetRef(entries1)
		eachFreeConfig(space, cfg.Free1, func(f1 []int) {
			if sampled1[localKey(f1)] {
				return
			}
			for _, e2 := range entries2 {
				emit(pivotIdx, f1, e2.free, e2.val/2)
			}
		})
	}
	if zero {
		shape2 := res.Sub2.Tensor.Shape
		for _, key := range sortedKeysRef(idx2) {
			if _, ok := idx1[key]; ok {
				continue
			}
			entries2 := idx2[key]
			pivotIdx := pivotIdxFromKeyRef(shape2, key, k)
			eachFreeConfig(space, cfg.Free1, func(f1 []int) {
				for _, e2 := range entries2 {
					emit(pivotIdx, f1, e2.free, e2.val/2)
				}
			})
		}
	}
	return j
}

// sortedKeysRef returns the map's keys in increasing order.
func sortedKeysRef(m map[int][]subEntryRef) []int {
	keys := make([]int, 0, len(m))
	//lint:allow determinism -- key collection only; the slice is sorted immediately below
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// freeSetRef returns the set of sampled free configurations.
func freeSetRef(entries []subEntryRef) map[int]bool {
	out := make(map[int]bool, len(entries))
	for _, e := range entries {
		out[localKey(e.free)] = true
	}
	return out
}
