// Package stitch implements JE-stitching (Section V-C): combining two
// PF-partitioned sub-ensembles into a single join tensor J over the full
// parameter space, by joining simulations that agree on the shared pivot
// configuration.
//
// Two variants are provided, matching the paper:
//
//   - Join: for every pair of sub-ensemble cells with equal pivot indices,
//     J gets their average. With P pivot configurations and E free
//     configurations per side this yields P·E² cells — the "effective
//     density squaring" of Figure 6.
//   - ZeroJoin: additionally, every sub-ensemble cell missing its partner
//     is joined against a zero value over the full free grid of the other
//     side, contributing x/2 cells. When sub-ensemble densities are low
//     this boosts the effective density to roughly 2·P·E·F (F = full free
//     grid size per side) and, per Table V, the resulting accuracy.
package stitch

import (
	"fmt"
	"sort"

	"repro/internal/partition"
	"repro/internal/tensor"
)

// pivotKey linearises the first k sub-tensor coordinates.
func pivotKey(shape tensor.Shape, idx []int, k int) int {
	key := 0
	for i := 0; i < k; i++ {
		key = key*shape[i] + idx[i]
	}
	return key
}

// subEntry is one sub-ensemble cell split into pivot part and free part.
type subEntry struct {
	free []int
	val  float64
}

// index groups a sub-ensemble's cells by pivot configuration.
func index(sub *partition.SubEnsemble) map[int][]subEntry {
	k := sub.NumPivots
	out := make(map[int][]subEntry)
	sub.Tensor.Each(func(idx []int, v float64) {
		key := pivotKey(sub.Tensor.Shape, idx, k)
		out[key] = append(out[key], subEntry{free: append([]int(nil), idx[k:]...), val: v})
	})
	return out
}

// pivotIdxFromKey inverts pivotKey into the pivot coordinates.
func pivotIdxFromKey(shape tensor.Shape, key, k int) []int {
	idx := make([]int, k)
	for i := k - 1; i >= 0; i-- {
		idx[i] = key % shape[i]
		key /= shape[i]
	}
	return idx
}

// Join constructs the join tensor J in the original mode order by
// averaging every pair of sub-ensemble cells that agree on the pivot
// configuration (Section V-C.1).
func Join(res *partition.Result) *tensor.Sparse {
	return stitch(res, false)
}

// ZeroJoin constructs the zero-join tensor (Section V-C.2): matched pairs
// are averaged as in Join, and unmatched cells are averaged with an
// implicit zero over every unsampled free configuration of the other side.
func ZeroJoin(res *partition.Result) *tensor.Sparse {
	return stitch(res, true)
}

func stitch(res *partition.Result, zero bool) *tensor.Sparse {
	space := res.Space
	cfg := res.Config
	k := len(cfg.Pivots)
	j := tensor.NewSparse(space.Shape())

	idx1 := index(res.Sub1)
	idx2 := index(res.Sub2)

	// Preallocate the COO arrays: the matched-pair count is known exactly,
	// which avoids repeated growth of multi-megabyte slices at high
	// densities (zero-join extensions still append beyond this).
	matched := 0
	for key, entries1 := range idx1 {
		matched += len(entries1) * len(idx2[key])
	}
	j.Idx = make([]int, 0, matched*space.Order())
	j.Vals = make([]float64, 0, matched)

	full := make([]int, space.Order())
	emit := func(pivotIdx, free1, free2 []int, v float64) {
		for i, m := range cfg.Pivots {
			full[m] = pivotIdx[i]
		}
		if free1 != nil {
			for i, m := range cfg.Free1 {
				full[m] = free1[i]
			}
		}
		if free2 != nil {
			for i, m := range cfg.Free2 {
				full[m] = free2[i]
			}
		}
		j.Append(full, v)
	}

	// Iterate pivot groups in sorted order so the join tensor's entry
	// layout (and therefore floating-point accumulation order downstream)
	// is deterministic.
	keys1 := sortedKeys(idx1)
	shape1 := res.Sub1.Tensor.Shape
	for _, key := range keys1 {
		entries1 := idx1[key]
		entries2 := idx2[key]
		pivotIdx := pivotIdxFromKey(shape1, key, k)
		// Matched pairs: the average of the two simulation results.
		for _, e1 := range entries1 {
			for _, e2 := range entries2 {
				emit(pivotIdx, e1.free, e2.free, (e1.val+e2.val)/2)
			}
		}
		if !zero {
			continue
		}
		// Zero-join extensions: each existing cell joined against the
		// other side's unsampled free configurations with value 0.
		sampled2 := freeSet(entries2)
		eachFreeConfig(space, cfg.Free2, func(f2 []int) {
			if sampled2[localKey(f2)] {
				return
			}
			for _, e1 := range entries1 {
				emit(pivotIdx, e1.free, f2, e1.val/2)
			}
		})
		sampled1 := freeSet(entries1)
		eachFreeConfig(space, cfg.Free1, func(f1 []int) {
			if sampled1[localKey(f1)] {
				return
			}
			for _, e2 := range entries2 {
				emit(pivotIdx, f1, e2.free, e2.val/2)
			}
		})
	}
	// Pivot configurations sampled for sub-ensemble 2 only (possible in
	// principle, though Generate always aligns them).
	if zero {
		shape2 := res.Sub2.Tensor.Shape
		for _, key := range sortedKeys(idx2) {
			if _, ok := idx1[key]; ok {
				continue
			}
			entries2 := idx2[key]
			pivotIdx := pivotIdxFromKey(shape2, key, k)
			eachFreeConfig(space, cfg.Free1, func(f1 []int) {
				for _, e2 := range entries2 {
					emit(pivotIdx, f1, e2.free, e2.val/2)
				}
			})
		}
	}
	return j
}

// sortedKeys returns the map's keys in increasing order.
func sortedKeys(m map[int][]subEntry) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// freeSet returns the set of sampled free configurations.
func freeSet(entries []subEntry) map[int]bool {
	// Keys here only need to be unique within one pivot group; use a
	// simple positional encoding with a large radix.
	out := make(map[int]bool, len(entries))
	for _, e := range entries {
		out[localKey(e.free)] = true
	}
	return out
}

const localRadix = 1 << 20 // far above any mode size

func localKey(idx []int) int {
	key := 0
	for _, i := range idx {
		if i >= localRadix {
			panic(fmt.Sprintf("stitch: mode index %d exceeds radix", i))
		}
		key = key*localRadix + i
	}
	return key
}

// eachFreeConfig enumerates every coordinate combination over the given
// original modes.
func eachFreeConfig(space interface{ Shape() tensor.Shape }, modes []int, fn func(idx []int)) {
	shape := space.Shape()
	cur := make([]int, len(modes))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(modes) {
			fn(cur)
			return
		}
		for i := 0; i < shape[modes[pos]]; i++ {
			cur[pos] = i
			walk(pos + 1)
		}
	}
	walk(0)
}
