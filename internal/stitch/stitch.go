// Package stitch implements JE-stitching (Section V-C): combining two
// PF-partitioned sub-ensembles into a single join tensor J over the full
// parameter space, by joining simulations that agree on the shared pivot
// configuration.
//
// Two variants are provided, matching the paper:
//
//   - Join: for every pair of sub-ensemble cells with equal pivot indices,
//     J gets their average. With P pivot configurations and E free
//     configurations per side this yields P·E² cells — the "effective
//     density squaring" of Figure 6.
//   - ZeroJoin: additionally, every sub-ensemble cell missing its partner
//     is joined against a zero value over the full free grid of the other
//     side, contributing x/2 cells. When sub-ensemble densities are low
//     this boosts the effective density to roughly 2·P·E·F (F = full free
//     grid size per side) and, per Table V, the resulting accuracy.
//
// The join is a SORT-MERGE join: each sub-ensemble's entries are
// stable-sorted by pivot key once (storage order preserved within a pivot
// group), and the two sorted group lists are merged with two pointers. No
// hash map of pivot groups is built and no per-entry free-coordinate
// slices are copied — free coordinates are read straight out of the
// sub-tensors' COO storage. The emission order is identical to the
// original hash-join implementation (pivot keys ascending; entries in
// storage order within a group; zero-join extensions after the matched
// pairs of each group; sub-2-only pivot groups last), so the join tensor's
// entry layout — and therefore every downstream floating-point
// accumulation order — is unchanged bit for bit (see the parity tests
// against the retained reference implementation).
package stitch

import (
	"fmt"
	"sort"

	"repro/internal/partition"
	"repro/internal/tensor"
)

// pivotKey linearises the first k sub-tensor coordinates.
func pivotKey(shape tensor.Shape, idx []int, k int) int {
	key := 0
	for i := 0; i < k; i++ {
		key = key*shape[i] + idx[i]
	}
	return key
}

// subIndex is a sub-ensemble's entries stable-sorted by pivot key and
// split into pivot groups. perm[bounds[g]:bounds[g+1]] are the storage
// indices of group g's entries, in storage order; keys[g] is its pivot
// key. Nothing is copied out of the sub-tensor.
type subIndex struct {
	t      *tensor.Sparse
	k      int   // number of leading pivot modes
	perm   []int // entry ids, stable-sorted by pivot key
	bounds []int // group boundaries into perm (len == len(keys)+1)
	keys   []int // ascending pivot key per group
}

// buildIndex compiles the sort-merge index for one sub-ensemble.
func buildIndex(sub *partition.SubEnsemble) subIndex {
	t := sub.Tensor
	k := sub.NumPivots
	o := t.Order()
	n := t.NNZ()
	entryKeys := make([]int, n)
	for e := 0; e < n; e++ {
		entryKeys[e] = pivotKey(t.Shape, t.Idx[e*o:(e+1)*o], k)
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Stable: entries within one pivot group keep their storage order,
	// which is what makes the merge emission identical to the hash-join's.
	sort.SliceStable(perm, func(a, b int) bool { return entryKeys[perm[a]] < entryKeys[perm[b]] })

	bounds := make([]int, 0, 16)
	keys := make([]int, 0, 16)
	for start := 0; start < n; {
		bounds = append(bounds, start)
		keys = append(keys, entryKeys[perm[start]])
		end := start + 1
		for end < n && entryKeys[perm[end]] == entryKeys[perm[start]] {
			end++
		}
		start = end
	}
	bounds = append(bounds, n)
	return subIndex{t: t, k: k, perm: perm, bounds: bounds, keys: keys}
}

// entry returns the full multi-index (aliasing sub-tensor storage; do not
// mutate) and value of the entry at sorted position p.
func (si *subIndex) entry(p int) ([]int, float64) {
	e := si.perm[p]
	o := si.t.Order()
	return si.t.Idx[e*o : (e+1)*o], si.t.Vals[e]
}

// Join constructs the join tensor J in the original mode order by
// averaging every pair of sub-ensemble cells that agree on the pivot
// configuration (Section V-C.1).
func Join(res *partition.Result) *tensor.Sparse {
	return stitch(res, false)
}

// ZeroJoin constructs the zero-join tensor (Section V-C.2): matched pairs
// are averaged as in Join, and unmatched cells are averaged with an
// implicit zero over every unsampled free configuration of the other side.
func ZeroJoin(res *partition.Result) *tensor.Sparse {
	return stitch(res, true)
}

func stitch(res *partition.Result, zero bool) *tensor.Sparse {
	space := res.Space
	cfg := res.Config
	k := len(cfg.Pivots)
	j := tensor.NewSparse(space.Shape())
	// Divergence quarantine propagates through stitching: if either
	// sub-ensemble rejects non-finite cells, the join does too, so a NaN
	// that slipped past ingest (e.g. direct Vals mutation) is dropped at
	// emission instead of averaging into the shared pivots and poisoning
	// every matched pair of the pivot group.
	j.RejectNonFinite = res.Sub1.Tensor.RejectNonFinite || res.Sub2.Tensor.RejectNonFinite

	idx1 := buildIndex(res.Sub1)
	idx2 := buildIndex(res.Sub2)

	// Preallocate the COO arrays: the matched-pair count is known exactly
	// from one merge pass over the group lists, which avoids repeated
	// growth of multi-megabyte slices at high densities (zero-join
	// extensions still append beyond this).
	matched := 0
	for g1, p2 := 0, 0; g1 < len(idx1.keys); g1++ {
		key := idx1.keys[g1]
		for p2 < len(idx2.keys) && idx2.keys[p2] < key {
			p2++
		}
		if p2 < len(idx2.keys) && idx2.keys[p2] == key {
			matched += (idx1.bounds[g1+1] - idx1.bounds[g1]) * (idx2.bounds[p2+1] - idx2.bounds[p2])
		}
	}
	//lint:allow quarantine -- capacity preallocation on a freshly created join tensor; entries enter via the quarantine-checked Append path
	j.Idx = make([]int, 0, matched*space.Order())
	//lint:allow quarantine -- capacity preallocation on a freshly created join tensor; entries enter via the quarantine-checked Append path
	j.Vals = make([]float64, 0, matched)

	full := make([]int, space.Order())
	emit := func(pivotIdx, free1, free2 []int, v float64) {
		for i, m := range cfg.Pivots {
			full[m] = pivotIdx[i]
		}
		if free1 != nil {
			for i, m := range cfg.Free1 {
				full[m] = free1[i]
			}
		}
		if free2 != nil {
			for i, m := range cfg.Free2 {
				full[m] = free2[i]
			}
		}
		j.Append(full, v)
	}

	// Reusable sampled-free-key scratch for the zero-join membership
	// tests (sorted slice + binary search instead of a per-group map).
	var sampled []int
	collectSampled := func(si *subIndex, s, e int) []int {
		sampled = sampled[:0]
		for p := s; p < e; p++ {
			idx, _ := si.entry(p)
			sampled = append(sampled, localKey(idx[si.k:]))
		}
		sort.Ints(sampled)
		return sampled
	}
	isSampled := func(keys []int, key int) bool {
		i := sort.SearchInts(keys, key)
		return i < len(keys) && keys[i] == key
	}

	// Pass 1: every pivot group of sub-ensemble 1, keys ascending, merged
	// two-pointer against sub-ensemble 2's group list.
	p2 := 0
	for g1 := 0; g1 < len(idx1.keys); g1++ {
		key := idx1.keys[g1]
		s1, e1 := idx1.bounds[g1], idx1.bounds[g1+1]
		for p2 < len(idx2.keys) && idx2.keys[p2] < key {
			p2++
		}
		var s2, e2 int
		if p2 < len(idx2.keys) && idx2.keys[p2] == key {
			s2, e2 = idx2.bounds[p2], idx2.bounds[p2+1]
		}
		pivotIdx, _ := idx1.entry(s1)
		pivotIdx = pivotIdx[:k]
		// Matched pairs: the average of the two simulation results.
		for q1 := s1; q1 < e1; q1++ {
			i1, v1 := idx1.entry(q1)
			for q2 := s2; q2 < e2; q2++ {
				i2, v2 := idx2.entry(q2)
				emit(pivotIdx, i1[k:], i2[k:], (v1+v2)/2)
			}
		}
		if !zero {
			continue
		}
		// Zero-join extensions: each existing cell joined against the
		// other side's unsampled free configurations with value 0.
		sampled2 := collectSampled(&idx2, s2, e2)
		eachFreeConfig(space, cfg.Free2, func(f2 []int) {
			if isSampled(sampled2, localKey(f2)) {
				return
			}
			for q1 := s1; q1 < e1; q1++ {
				i1, v1 := idx1.entry(q1)
				emit(pivotIdx, i1[k:], f2, v1/2)
			}
		})
		sampled1 := collectSampled(&idx1, s1, e1)
		eachFreeConfig(space, cfg.Free1, func(f1 []int) {
			if isSampled(sampled1, localKey(f1)) {
				return
			}
			for q2 := s2; q2 < e2; q2++ {
				i2, v2 := idx2.entry(q2)
				emit(pivotIdx, f1, i2[k:], v2/2)
			}
		})
	}
	// Pass 2: pivot configurations sampled for sub-ensemble 2 only
	// (possible in principle, though Generate always aligns them).
	if zero {
		p1 := 0
		for g2 := 0; g2 < len(idx2.keys); g2++ {
			key := idx2.keys[g2]
			for p1 < len(idx1.keys) && idx1.keys[p1] < key {
				p1++
			}
			if p1 < len(idx1.keys) && idx1.keys[p1] == key {
				continue
			}
			s2, e2 := idx2.bounds[g2], idx2.bounds[g2+1]
			pivotIdx, _ := idx2.entry(s2)
			pivotIdx = pivotIdx[:k]
			eachFreeConfig(space, cfg.Free1, func(f1 []int) {
				for q2 := s2; q2 < e2; q2++ {
					i2, v2 := idx2.entry(q2)
					emit(pivotIdx, f1, i2[k:], v2/2)
				}
			})
		}
	}
	return j
}

const localRadix = 1 << 20 // far above any mode size

// maxLocalKeyModes bounds the positional radix packing: 3 modes × 20 bits
// = 60 bits, the most that fits a 63-bit non-negative int. A fourth mode
// would shift the leading coordinate past bit 63 and silently wrap,
// producing key collisions and therefore wrong zero-join membership — so
// localKey refuses loudly instead.
const maxLocalKeyModes = 3

// localKey packs free-mode coordinates into a single int key, unique
// within one pivot group. Keys only need to be comparable within one
// group, so a fixed large radix per mode suffices.
func localKey(idx []int) int {
	if len(idx) > maxLocalKeyModes {
		panic(fmt.Sprintf("stitch: localKey cannot pack %d free modes at radix 2^20 (max %d before exceeding 63 bits); widen the radix packing before using this many free modes per side", len(idx), maxLocalKeyModes))
	}
	key := 0
	for _, i := range idx {
		if i >= localRadix {
			panic(fmt.Sprintf("stitch: mode index %d exceeds radix", i))
		}
		key = key*localRadix + i
	}
	return key
}

// eachFreeConfig enumerates every coordinate combination over the given
// original modes.
func eachFreeConfig(space interface{ Shape() tensor.Shape }, modes []int, fn func(idx []int)) {
	shape := space.Shape()
	cur := make([]int, len(modes))
	var walk func(pos int)
	walk = func(pos int) {
		if pos == len(modes) {
			fn(cur)
			return
		}
		for i := 0; i < shape[modes[pos]]; i++ {
			cur[pos] = i
			walk(pos + 1)
		}
	}
	walk(0)
}
