package m2td

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
)

// smallConfig keeps facade tests fast.
func smallConfig() Config {
	return Config{
		System:      "double-pendulum",
		Resolution:  5,
		TimeSamples: 4,
		Rank:        2,
		Method:      "select",
		Seed:        7,
	}
}

func TestSystems(t *testing.T) {
	got := Systems()
	want := []string{"double-pendulum", "triple-pendulum", "lorenz", "seir"}
	if len(got) != len(want) {
		t.Fatalf("Systems() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Systems() = %v, want %v", got, want)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	report, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.NumSims <= 0 || report.JoinCells <= 0 {
		t.Fatalf("budget accounting: %+v", report)
	}
	if math.IsNaN(report.Accuracy) {
		t.Fatal("accuracy not computed")
	}
	if report.Accuracy <= 0 || report.Accuracy >= 1 {
		t.Fatalf("accuracy = %v, want in (0, 1)", report.Accuracy)
	}
	if report.Decomposition == nil || len(report.Decomposition.Factors) != 5 {
		t.Fatal("decomposition missing")
	}
	if report.DecompTime <= 0 {
		t.Fatal("decomposition time not recorded")
	}
}

func TestRunSkipAccuracy(t *testing.T) {
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(report.Accuracy) {
		t.Fatalf("accuracy = %v, want NaN when skipped", report.Accuracy)
	}
}

func TestRunAllMethodsAndDefaults(t *testing.T) {
	for _, m := range []string{"avg", "concat", "select", "AVG", "M2TD-SELECT"} {
		cfg := smallConfig()
		cfg.Method = Method(m)
		if _, err := Run(cfg); err != nil {
			t.Fatalf("method %q: %v", m, err)
		}
	}
	// Zero-valued config normalises to runnable defaults (slow at the real
	// default resolution, so only exercise validation here).
	cfg := Config{Method: "bogus"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("bogus method accepted")
	}
}

func TestRunUnknownPivotAndSystem(t *testing.T) {
	cfg := smallConfig()
	cfg.Pivot = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown pivot accepted")
	}
	cfg = smallConfig()
	cfg.System = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown system accepted")
	}
}

func TestRunParameterPivot(t *testing.T) {
	cfg := smallConfig()
	cfg.Pivot = "phi1"
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(report.Accuracy) {
		t.Fatal("accuracy not computed for parameter pivot")
	}
}

func TestRunDistributedMatchesSerial(t *testing.T) {
	serial, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Workers = 3
	distributed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(serial.Accuracy-distributed.Accuracy) > 1e-9 {
		t.Fatalf("distributed accuracy %v != serial %v", distributed.Accuracy, serial.Accuracy)
	}
}

func TestBaselineSchemes(t *testing.T) {
	m2tdReport, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"random", "grid", "slice"} {
		base, err := Baseline(smallConfig(), scheme, m2tdReport.NumSims)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if base.NumSims > m2tdReport.NumSims {
			t.Fatalf("%s exceeded budget", scheme)
		}
		if base.Accuracy >= m2tdReport.Accuracy {
			t.Fatalf("%s accuracy %v >= M2TD %v (paper's headline violated)", scheme, base.Accuracy, m2tdReport.Accuracy)
		}
	}
	if _, err := Baseline(smallConfig(), "nope", 10); err == nil {
		t.Fatal("unknown baseline scheme accepted")
	}
}

func TestBuildingBlocks(t *testing.T) {
	space, err := eval.SpaceFor("double-pendulum", 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	part, err := Partition(space, space.TimeMode(), 1, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	j := Stitch(part, false)
	zj := Stitch(part, true)
	if zj.NNZ() <= j.NNZ() {
		t.Fatalf("zero-join %d not denser than join %d", zj.NNZ(), j.NNZ())
	}
	res, err := Decompose(part, core.SELECT, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.Join.NNZ() != j.NNZ() {
		t.Fatal("Decompose join differs from Stitch")
	}
}

func TestZeroJoinImprovesLowBudgetAccuracy(t *testing.T) {
	// Table V's shape: at a low sub-ensemble density, zero-join stitching
	// should not hurt (and usually helps) reconstruction accuracy.
	cfg := smallConfig()
	cfg.SubEnsembleDensity = 0.3
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ZeroJoin = true
	zero, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if zero.JoinCells <= plain.JoinCells {
		t.Fatal("zero-join did not increase effective density")
	}
}

func TestRunFactoredMatchesDefault(t *testing.T) {
	base, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.Factored = true
	factored, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.Accuracy-factored.Accuracy) > 1e-9 {
		t.Fatalf("factored accuracy %v != default %v", factored.Accuracy, base.Accuracy)
	}
	if factored.JoinCells != 0 {
		t.Fatal("factored run should not materialise a join tensor")
	}
}

func TestRunFactoredWorkersConflict(t *testing.T) {
	cfg := smallConfig()
	cfg.Factored = true
	cfg.Workers = 2
	if _, err := Run(cfg); err == nil {
		t.Fatal("Factored+Workers accepted")
	}
}

func TestRunEstimatedAccuracyNearExact(t *testing.T) {
	exact, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallConfig()
	cfg.AccuracySampleSims = 1 << 20 // clamps to the full space: exact
	est, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Accuracy-exact.Accuracy) > 1e-9 {
		t.Fatalf("full-sample estimate %v != exact %v", est.Accuracy, exact.Accuracy)
	}
	cfg.AccuracySampleSims = 200
	partial, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(partial.Accuracy-exact.Accuracy) > 0.2 {
		t.Fatalf("partial estimate %v far from exact %v", partial.Accuracy, exact.Accuracy)
	}
}

func TestBaselineEstimatedAccuracy(t *testing.T) {
	cfg := smallConfig()
	cfg.AccuracySampleSims = 1 << 20
	exactCfg := smallConfig()
	est, err := Baseline(cfg, "random", 30)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Baseline(exactCfg, "random", 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Accuracy-exact.Accuracy) > 1e-9 {
		t.Fatalf("baseline full-sample estimate %v != exact %v", est.Accuracy, exact.Accuracy)
	}
}

func TestBaselineLatinHypercube(t *testing.T) {
	m2tdReport, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	lhs, err := Baseline(smallConfig(), "lhs", m2tdReport.NumSims)
	if err != nil {
		t.Fatal(err)
	}
	if lhs.NumSims > m2tdReport.NumSims {
		t.Fatal("LHS exceeded budget")
	}
	if lhs.Accuracy >= m2tdReport.Accuracy {
		t.Fatalf("LHS accuracy %v >= M2TD %v (headline violated)", lhs.Accuracy, m2tdReport.Accuracy)
	}
}

func TestRunAutoPivot(t *testing.T) {
	cfg := smallConfig()
	cfg.Pivot = "auto"
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(report.Accuracy) || report.Accuracy <= 0 {
		t.Fatalf("auto-pivot accuracy = %v", report.Accuracy)
	}
	// Auto must never lose badly against the default pivot: within a
	// factor given it optimises a pilot of the same objective.
	def, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if report.Accuracy < def.Accuracy/2 {
		t.Fatalf("auto pivot %v far below default %v", report.Accuracy, def.Accuracy)
	}
}
