# Developer entry points mirroring .github/workflows/ci.yml — `make ci`
# runs exactly what the pipeline runs.

GO ?= go

# Pinned external analysis tools (single source of truth — the CI lint
# job reads these exact versions). They are NOT module dependencies:
# go.mod stays zero-dependency, and `make lint` runs the hermetic
# in-repo suite (vet + m2tdlint) without them. `make lint-extra`
# installs and runs them where network access exists.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

.PHONY: all build vet lint lint-fix lint-extra test race bench bench-json bench-diff bench-dist-json bench-dist-diff bench-smoke fuzz-smoke trace-smoke dist-smoke serve-smoke bench-serve-json bench-serve-diff ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Hermetic lint: go vet plus the in-repo m2tdlint invariant suite
# (determinism, ctxprop, spans, floatcmp, quarantine, locks, goroleak,
# wirecompat, atomicstore, metrichygiene — DESIGN.md §8 and §15).
# Runs offline; any finding fails the target. `m2tdlint -changed <ref>`
# narrows a run to the packages changed since a git ref (what PR CI
# does), and `-sarif` emits a code-scanning report.
lint: vet
	$(GO) run ./cmd/m2tdlint ./...

# Apply every suggested fix (e.g. missing json tags on wire structs),
# then re-run: the target fails only on findings the fixes could not
# cure. Review the diff before committing — fixes are textual edits.
lint-fix:
	$(GO) run ./cmd/m2tdlint -fix ./...

# External analyzers at pinned versions. Requires network for the first
# install; kept out of `ci` so the aggregate stays runnable offline.
lint-extra:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...
	$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...

test:
	$(GO) test ./...

# Race-detector pass. The workers=1 vs workers=N bit-stability suites
# double as data-race proofs for the internal/parallel kernels here.
race:
	$(GO) test -race -timeout 20m ./...

# Full benchmark run (slow; honours M2TD_BENCH_RES).
bench:
	$(GO) test -run=NONE -bench=. ./...

# Machine-readable kernel benchmark summary (BENCH_7.json): TTM, ModeGram,
# workspace chains, HOSVD/HOOI (plain and sketched), and stitching, with
# ns/op and allocs/op. The checked-in copy is the baseline the CI
# bench-regression job diffs fresh runs against (see bench-diff);
# regenerate it deliberately, with a real benchtime, when a PR
# intentionally moves kernel performance.
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_7.json -benchtime 2s

# Benchmark-gate flags shared by `make bench-diff` and the CI
# bench-regression job. ns/op tolerance is loose (cross-machine);
# allocs tolerance absorbs goroutine-spawn bookkeeping that varies with
# core count (the exact allocs assertion is the pinned-fanout -race unit
# test); the -shape gates are the sharp check — worker-scaling curves in
# the fresh run must be monotone non-increasing within 10%; the -speedup
# gate asserts the sketch fast path's claim (keep=0.1 at least 3x faster
# than plain HOSVD) within the fresh run, where both sides share one
# machine and the tight ratio is meaningful. The dense
# Gram family gets a wider ns tolerance (prefix override): on a
# single-core box its strip partials are pure overhead, so its absolute
# ns swings with the machine — its regression protection is the exact
# allocs gate plus the ModeGramDenseWorkers shape gate.
BENCH_GATE = -tol 0.35 -allocs-tol 48 -shape-slack 0.10 \
	-tol-bench BenchmarkModeGramDense=1.0 \
	-shape BenchmarkParallelHOSVD \
	-shape BenchmarkParallelTTM \
	-shape BenchmarkModeGramDenseWorkers \
	-speedup BenchmarkSketchedHOSVD/keep=0.1:BenchmarkHOSVD:3

# Re-measure the kernel benchmarks and diff against the checked-in
# baseline — exactly what the CI bench-regression job runs. Exit 1 means
# a regression or a scaling inversion; exit 2 means a malformed snapshot.
bench-diff:
	$(GO) run ./cmd/benchjson -out BENCH_new.json -benchtime 2s
	$(GO) run ./cmd/benchjson -diff $(BENCH_GATE) BENCH_7.json BENCH_new.json

# Multi-process engine benchmark snapshot (BENCH_8.json): the distnet
# coordinator/worker campaign — process spawn, localhost TCP framing,
# store round-trips, and all three D-M2TD phases — against worker-process
# count (Table III's phase-time-vs-servers curve with real IPC overhead).
bench-dist-json:
	$(GO) run ./cmd/benchjson -out BENCH_8.json -benchtime 2s \
		-bench BenchmarkDistNet -pkgs ./internal/distnet

# Gate flags for the distnet snapshot, looser than BENCH_GATE on purpose:
# each iteration forks worker processes and round-trips artifacts through
# the filesystem, so absolute ns/op swings with the box's fork and disk
# latency far more than the in-process kernels do. No -shape gate either —
# at the benchmark's deliberately tiny problem size, extra processes are
# pure spawn overhead and the workers curve is NOT expected to be
# monotone. The sharp distributed regression checks are the bit-identity
# drills (dist-smoke and the CI chaos job), not wall-clock. allocs/op is
# coordinator-side bookkeeping (per-frame JSON, goroutines, timers) whose
# count moves with heartbeat/lease timing, hence the wide absolute band.
DIST_BENCH_GATE = -tol 1.5 -allocs-tol 4096

# Re-measure the multi-process engine and diff against the checked-in
# BENCH_8.json — what the CI chaos job runs after the kill drills.
bench-dist-diff:
	$(GO) run ./cmd/benchjson -out BENCH_8_new.json -benchtime 2s \
		-bench BenchmarkDistNet -pkgs ./internal/distnet
	$(GO) run ./cmd/benchjson -diff $(DIST_BENCH_GATE) BENCH_8.json BENCH_8_new.json

# One iteration of every benchmark — keeps benchmark code compiling and
# running without measuring anything.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Short runs of the internal/tensor fuzz targets.
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzLinearIndexRoundtrip -fuzztime=10s ./internal/tensor
	$(GO) test -run=NONE -fuzz=FuzzDedupPreservesSum -fuzztime=10s ./internal/tensor

# Observability acceptance drill (mirrors the CI `obs` job): run a faulted
# pipeline with a live metrics listener and a JSONL trace sink, assert the
# shutdown self-scrape, and replay the trace through tracecat.
trace-smoke:
	$(GO) run ./cmd/m2tdbench -run -res 8 -fault-rate 0.1 -divergent-rate 0.02 \
		-metrics-addr 127.0.0.1:0 -trace-out trace.jsonl 2> trace-run.stderr \
		|| (cat trace-run.stderr; exit 1)
	@grep -q "metrics scrape ok" trace-run.stderr
	$(GO) run ./cmd/tracecat trace.jsonl
	@rm -f trace.jsonl trace-run.stderr

# Distributed kill-and-recover drill (mirrors the CI `chaos` job): the
# same campaign on 3 worker processes with 0, 1, and 2 workers SIGKILLed
# mid-task must produce the same core fingerprint bit for bit, and the
# killed run's merged trace must replay through tracecat. A stable
# -dist-shards pins the determinism unit so the three runs are comparable.
dist-smoke:
	$(GO) run ./cmd/m2tdbench -run -res 6 -dist-procs 3 -dist-shards 4 > dist-clean.out
	$(GO) run ./cmd/m2tdbench -run -res 6 -dist-procs 3 -dist-shards 4 \
		-kill-workers 1 -trace-out dist-trace.jsonl > dist-kill1.out
	$(GO) run ./cmd/m2tdbench -run -res 6 -dist-procs 3 -dist-shards 4 \
		-kill-workers 2 > dist-kill2.out
	@grep '^core fingerprint' dist-clean.out dist-kill1.out dist-kill2.out
	@test "$$(grep -h '^core fingerprint' dist-clean.out dist-kill1.out dist-kill2.out | sort -u | wc -l)" = 1 \
		|| (echo "kill-and-recover drill: fingerprints diverged"; exit 1)
	$(GO) run ./cmd/tracecat dist-trace.jsonl > /dev/null
	@rm -f dist-clean.out dist-kill1.out dist-kill2.out dist-trace.jsonl

# Serving-layer acceptance (mirrors the CI `serve` job): the handler and
# typed-client suites under -race — including the kill-mid-campaign
# checkpoint-resume drill — then a loadgen smoke against a self-hosted
# server, which hard-asserts that duplicate submissions coalesce and hit
# the decomposition cache (it exits nonzero otherwise).
serve-smoke:
	$(GO) test -race -timeout 15m ./internal/serve ./api
	$(GO) run ./cmd/loadgen -requests 200 -clients 8 -distinct 8

# Regenerate the checked-in serving-latency snapshot (BENCH_9.json):
# loadgen percentiles (submit / status / predict / end-to-end campaign)
# plus the recompute fraction, in the benchjson schema.
bench-serve-json:
	$(GO) run ./cmd/loadgen -requests 200 -clients 8 -distinct 8 -out BENCH_9.json

# Gate flags for the serving snapshot. HTTP latency percentiles on a
# shared runner swing far more than in-process kernels (scheduler noise,
# connection setup, p99 tail), so ns tolerance is very loose, and the
# p99 entries — the 2nd-slowest of 200 samples, taken while the blocker
# campaigns deliberately saturate the executors — get an even wider
# band. The sharp, machine-independent check is the recompute fraction:
# with 8 blockers plus 8 distinct campaigns across 8+16+200+8
# submissions it is a deterministic ratio, so it gets a tight override.
# A recompute-fraction regression means duplicate submissions stopped
# coalescing or the cache stopped hitting, which is the serving layer's
# entire value proposition.
SERVE_BENCH_GATE = -tol 4.0 -tol-bench LoadgenRecomputeFraction=0.25 \
	-tol-bench LoadgenSubmit/p99=25.0 \
	-tol-bench LoadgenCampaign/p99=25.0 \
	-tol-bench LoadgenStatus/p99=25.0 \
	-tol-bench LoadgenPredict/p99=25.0

# Re-measure the serving percentiles and diff against the checked-in
# BENCH_9.json — what the CI serve job runs.
bench-serve-diff:
	$(GO) run ./cmd/loadgen -requests 200 -clients 8 -distinct 8 -out BENCH_9_new.json
	$(GO) run ./cmd/benchjson -diff $(SERVE_BENCH_GATE) BENCH_9.json BENCH_9_new.json

ci: build lint test race bench-smoke fuzz-smoke trace-smoke dist-smoke serve-smoke

clean:
	$(GO) clean ./...
