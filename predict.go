package m2td

import (
	"fmt"

	"repro/internal/dynsys"
	"repro/internal/mat"
	"repro/internal/tensor"
)

// Predict evaluates the decomposition at arbitrary physical parameter
// values — including values between grid points — returning the predicted
// cell values (distance to the observed system) for every timestamp.
// This is the pay-off the paper motivates: after spending B simulations,
// the decomposition answers "what would a simulation at these parameters
// look like?" for the entire space without running the simulator.
//
// Off-grid parameter values are handled by linear interpolation between
// the two bracketing rows of each parameter mode's factor matrix (the
// Tucker model is multilinear in the factor rows, so this is exact
// multilinear interpolation of the reconstruction). Values outside a
// parameter's range are clamped to it.
func (r *Report) Predict(paramValues []float64) ([]float64, error) {
	space := r.Space
	if r.Decomposition == nil {
		return nil, fmt.Errorf("m2td: report carries no decomposition")
	}
	ps := space.Sys.Params()
	if len(paramValues) != len(ps) {
		return nil, fmt.Errorf("m2td: %d parameter values for %d parameters", len(paramValues), len(ps))
	}
	factors := r.Decomposition.Factors
	cur := r.Decomposition.Core
	for mode, p := range ps {
		row, err := interpolatedRow(factors[mode], p, paramValues[mode], space.Res)
		if err != nil {
			return nil, err
		}
		cur = tensor.TTM(cur, mode, mat.FromSlice(1, len(row), row))
	}
	// Expand the time mode through its full factor.
	timeMode := space.TimeMode()
	cur = tensor.TTM(cur, timeMode, factors[timeMode])
	out := make([]float64, space.TimeSamples)
	copy(out, cur.Data)
	return out, nil
}

// PredictAt evaluates the decomposition at one timestamp index.
func (r *Report) PredictAt(paramValues []float64, timeIdx int) (float64, error) {
	if timeIdx < 0 || timeIdx >= r.Space.TimeSamples {
		return 0, fmt.Errorf("m2td: time index %d out of range [0, %d)", timeIdx, r.Space.TimeSamples)
	}
	fiber, err := r.Predict(paramValues)
	if err != nil {
		return 0, err
	}
	return fiber[timeIdx], nil
}

// interpolatedRow returns the factor row for a physical parameter value:
// the exact row on grid points, the linear blend of the two bracketing
// rows otherwise.
func interpolatedRow(f *mat.Matrix, p dynsys.Param, value float64, res int) ([]float64, error) {
	if res <= 1 {
		return append([]float64(nil), f.Row(0)...), nil
	}
	// Continuous grid coordinate in [0, res-1].
	t := (value - p.Min) / (p.Max - p.Min) * float64(res-1)
	if t < 0 {
		t = 0
	}
	if t > float64(res-1) {
		t = float64(res - 1)
	}
	lo := int(t)
	hi := lo + 1
	if hi > res-1 {
		hi = res - 1
	}
	w := t - float64(lo)
	out := make([]float64, f.Cols)
	rowLo, rowHi := f.Row(lo), f.Row(hi)
	for c := range out {
		out[c] = (1-w)*rowLo[c] + w*rowHi[c]
	}
	return out, nil
}
