package m2td

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

// TuckerOptions configures TuckerCtx — the facade's raw-tensor Tucker
// entry point (cmd/tensorstore decompose). The zero value runs plain
// HOSVD at uniform rank 4 on all CPUs.
type TuckerOptions struct {
	// Rank is the uniform per-mode target rank (0 = 4). Ranks, when
	// non-nil, overrides it with explicit per-mode ranks.
	Rank  int
	Ranks []int
	// HOOI refines the HOSVD initialisation with alternating HOOI sweeps.
	HOOI bool
	// Sketch enables the randomized sketch fast path (see Config.Sketch);
	// Seed 0 defaults to 1.
	Sketch SketchConfig
	// Parallel is the worker-pool size for the decomposition kernels
	// (0 = all CPUs, 1 = serial). Results are bit-identical for any value.
	Parallel int
	// Trace, when non-nil, receives a "tucker" stage span under its root.
	Trace *obs.Trace
}

// TuckerResult is the outcome of TuckerCtx.
type TuckerResult struct {
	// Decomposition is the Tucker core + factors; pass it directly to
	// store.SaveDecomposition.
	Decomposition tucker.Decomposition
	// Ranks are the effective (shape-clipped) per-mode ranks.
	Ranks []int
	// Sketched reports the sketch fast path ran; SketchKept and
	// SketchInput are the retained and original cell counts when it did.
	Sketched    bool
	SketchKept  int
	SketchInput int
}

// Fit returns the Tucker fit 1 − ‖X − X̂‖F/‖X‖F of the decomposition
// against the tensor it was computed from. Sketched decompositions return
// the fit against the sketch's unbiased estimate, an approximation of the
// exact fit.
func (r *TuckerResult) Fit(x *tensor.Sparse) (float64, error) {
	return tucker.FitOf(r.Decomposition, x)
}

// TuckerCtx runs a plain Tucker decomposition (HOSVD, optionally refined
// with HOOI sweeps, optionally on the randomized sketch fast path) over a
// raw sparse tensor with cooperative cancellation — the facade entry
// point for tensors that did not come out of the M2TD pipeline, so CLI
// tools and the campaign server never call internal/tucker directly.
func TuckerCtx(ctx context.Context, x *tensor.Sparse, opts TuckerOptions) (*TuckerResult, error) {
	if x == nil || x.Order() == 0 {
		return nil, fmt.Errorf("m2td: TuckerCtx needs a non-empty tensor")
	}
	ranks := opts.Ranks
	if ranks == nil {
		rank := opts.Rank
		if rank == 0 {
			rank = 4
		}
		ranks = tucker.UniformRanks(x.Order(), rank)
	}
	if opts.Sketch.KeepFrac != 0 && opts.Sketch.Seed == 0 {
		opts.Sketch.Seed = 1
	}
	if f := opts.Sketch.KeepFrac; f < 0 || f > 1 {
		return nil, fmt.Errorf("m2td: Sketch.KeepFrac %v outside (0, 1]", f)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("m2td: tucker stage: %w", err)
	}
	span := opts.Trace.Root().Start("tucker")
	done := span.WithVitals(nil)
	defer done()

	res := &TuckerResult{}
	if f := opts.Sketch.KeepFrac; f > 0 {
		sopts := tucker.SketchOptions{KeepFrac: f, Seed: opts.Sketch.Seed, Workers: opts.Parallel, Span: span}
		var (
			dec   tucker.Decomposition
			stats tucker.SketchStats
			err   error
		)
		if opts.HOOI {
			dec, stats, err = tucker.SketchedHOOI(x, ranks, sopts, tucker.HOOIOptions{Workers: opts.Parallel, Span: span})
		} else {
			dec, stats, err = tucker.SketchedHOSVD(x, ranks, sopts)
		}
		if err != nil {
			return nil, fmt.Errorf("m2td: tucker stage: %w", err)
		}
		res.Decomposition = dec
		res.Sketched = true
		res.SketchKept = stats.Kept
		res.SketchInput = stats.InputNNZ
	} else if opts.HOOI {
		dec, err := tucker.HOOICtx(ctx, x, ranks, tucker.HOOIOptions{Workers: opts.Parallel, Span: span})
		if err != nil {
			return nil, fmt.Errorf("m2td: tucker stage: %w", err)
		}
		res.Decomposition = dec
	} else {
		res.Decomposition = tucker.HOSVDSpan(x, ranks, opts.Parallel, span)
	}
	res.Ranks = res.Decomposition.Ranks
	return res, nil
}
