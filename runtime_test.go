package m2td

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
)

// waitForGoroutines polls until the goroutine count returns to (near) the
// baseline, failing if the fan-out leaked workers.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, baseline %d", runtime.NumGoroutine(), base)
}

func TestRunCtxCancelledBeforeStart(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	start := time.Now()
	_, err := RunCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("cancelled run took %v", d)
	}
	waitForGoroutines(t, base)
}

func TestRunCtxCancelledMidCampaign(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var attempts atomic.Int64
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	cfg.Faults = &faults.Config{Seed: 1, Hook: func() {
		if attempts.Add(1) == 3 {
			cancel()
		}
	}}
	_, err := RunCtx(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want Canceled, got %v", err)
	}
	waitForGoroutines(t, base)
}

func TestRunSimTimeout(t *testing.T) {
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	cfg.SimTimeout = time.Nanosecond
	_, err := Run(cfg)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded from the simulation stage, got %v", err)
	}
}

func TestRunFaultInjectionAccounting(t *testing.T) {
	clean := smallConfig()
	clean.SkipAccuracy = true
	cleanReport, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}

	// The acceptance configuration: 10% transient + 2% divergent.
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	cfg.Faults = &faults.Config{Seed: 99, TransientRate: 0.10, DivergentRate: 0.02}
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}
	report, err := Run(cfg)
	if err != nil {
		t.Fatalf("fault-injected run must complete without error: %v", err)
	}
	if report.FaultStats == nil {
		t.Fatal("FaultStats missing")
	}
	is := *report.FaultStats
	if is.TransientSims == 0 || is.DivergentSims == 0 {
		t.Fatalf("no faults injected (%+v); raise rates or change the seed", is)
	}

	// Every injected fault is accounted for, exactly:
	// transient sims all recovered within the retry budget,
	if report.FailedSims != 0 {
		t.Fatalf("FailedSims = %d; transients should all recover", report.FailedSims)
	}
	if report.RetriedSims != is.TransientSims {
		t.Fatalf("RetriedSims %d != injected transient sims %d", report.RetriedSims, is.TransientSims)
	}
	// divergent cells all quarantined (and nothing else lost),
	cleanCells := cleanReport.Partition.Sub1.Tensor.NNZ() + cleanReport.Partition.Sub2.Tensor.NNZ()
	gotCells := report.Partition.Sub1.Tensor.NNZ() + report.Partition.Sub2.Tensor.NNZ()
	if report.QuarantinedCells == 0 || report.QuarantinedCells != cleanCells-gotCells {
		t.Fatalf("QuarantinedCells %d != lost cells %d", report.QuarantinedCells, cleanCells-gotCells)
	}
	// and the effective density is degraded accordingly.
	if report.EffectiveDensity1 >= cleanReport.EffectiveDensity1 && report.EffectiveDensity2 >= cleanReport.EffectiveDensity2 {
		t.Fatalf("densities not degraded: %g/%g vs clean %g/%g",
			report.EffectiveDensity1, report.EffectiveDensity2,
			cleanReport.EffectiveDensity1, cleanReport.EffectiveDensity2)
	}
	if report.ExecutedSims != report.NumSims {
		t.Fatalf("ExecutedSims %d != NumSims %d", report.ExecutedSims, report.NumSims)
	}
}

func TestRunFaultInjectionWithoutRetriesFailsSims(t *testing.T) {
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	cfg.Faults = &faults.Config{Seed: 99, TransientRate: 0.10}
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 1}
	report, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	is := *report.FaultStats
	if is.TransientSims == 0 {
		t.Fatal("no transients injected; test is vacuous")
	}
	if report.FailedSims == 0 || report.RetriedSims != 0 {
		t.Fatalf("MaxAttempts=1: want failures and no retries, got failed=%d retried=%d",
			report.FailedSims, report.RetriedSims)
	}
	if report.ExecutedSims+report.FailedSims != report.NumSims {
		t.Fatalf("executed %d + failed %d != %d sims", report.ExecutedSims, report.FailedSims, report.NumSims)
	}
}

func TestRunResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()

	// Uninterrupted reference pipeline (same seed, no checkpointing).
	ref := smallConfig()
	ref.SkipAccuracy = true
	refReport, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}

	// Campaign 1: killed (cooperatively) mid-fan-out after 7 simulations.
	ctx1, cancel1 := context.WithCancel(context.Background())
	var attempts1 atomic.Int64
	cfg1 := smallConfig()
	cfg1.SkipAccuracy = true
	cfg1.CheckpointDir = dir
	cfg1.CheckpointEvery = 1
	cfg1.Faults = &faults.Config{Seed: 1, Hook: func() {
		if attempts1.Add(1) == 7 {
			cancel1()
		}
	}}
	_, err = RunCtx(ctx1, cfg1)
	cancel1()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("campaign 1: want Canceled, got %v", err)
	}

	// Campaign 2: resumes from the checkpoint and completes.
	var attempts2 atomic.Int64
	cfg2 := smallConfig()
	cfg2.SkipAccuracy = true
	cfg2.CheckpointDir = dir
	cfg2.CheckpointEvery = 1
	cfg2.Resume = true
	cfg2.Faults = &faults.Config{Seed: 1, Hook: func() { attempts2.Add(1) }}
	report, err := RunCtx(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if report.RestoredSims == 0 {
		t.Fatal("resume restored nothing")
	}
	if report.RestoredSims+report.ExecutedSims != report.NumSims {
		t.Fatalf("restored %d + executed %d != %d sims",
			report.RestoredSims, report.ExecutedSims, report.NumSims)
	}
	// Only the unfinished simulations re-ran.
	if got := int(attempts2.Load()); got != report.ExecutedSims {
		t.Fatalf("resumed campaign ran %d simulations, want exactly the %d unfinished ones",
			got, report.ExecutedSims)
	}
	// The stitched join tensor is bit-identical to the uninterrupted run's.
	refJoin, join := refReport.Decomposition.Join, report.Decomposition.Join
	if !reflect.DeepEqual(join.Idx, refJoin.Idx) || !reflect.DeepEqual(join.Vals, refJoin.Vals) {
		t.Fatal("resumed pipeline's join tensor is not bit-identical to the uninterrupted run's")
	}
}

func TestRunResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 1
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	// A different seed is a different campaign: its resume must ignore
	// the existing checkpoint entirely.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	cfg2.Resume = true
	report, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if report.RestoredSims != 0 {
		t.Fatalf("restored %d sims from a foreign checkpoint", report.RestoredSims)
	}
}

func TestBaselineCtxFaultTolerant(t *testing.T) {
	cfg := smallConfig()
	cfg.SkipAccuracy = true
	cfg.Faults = &faults.Config{Seed: 13, TransientRate: 0.2, DivergentRate: 0.1}
	cfg.Retry = faults.RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond}
	report, err := BaselineCtx(context.Background(), cfg, "random", 40)
	if err != nil {
		t.Fatal(err)
	}
	if report.FaultStats == nil || report.FaultStats.TransientSims == 0 {
		t.Fatalf("no transients observed: %+v", report.FaultStats)
	}
	if report.FailedSims != 0 {
		t.Fatalf("recoverable faults failed %d sims", report.FailedSims)
	}
	if report.QuarantinedCells == 0 {
		t.Fatal("divergent sims produced no quarantined cells")
	}
}
