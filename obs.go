package m2td

import (
	"fmt"
	"io"

	"repro/internal/obs"
)

// Pipeline-level instrumentation and the public observability surface of
// the facade: trace construction for the Ctx building blocks, Prometheus/
// expvar/pprof serving, and JSONL trace serialization (replayable by
// cmd/tracecat).

var runsTotal = obs.Default.Counter("m2td_runs_total",
	"Completed pipeline runs (Run/RunCtx and Baseline/BaselineCtx).")

// NewTrace starts a stage-span trace for use with the Ctx building blocks
// (PartitionCtx, StitchCtx, DecomposeCtx). Run and Baseline build their
// own trace when Config.Trace is set; NewTrace is for custom pipelines.
// Finish it with its Finish method before serializing.
func NewTrace(name string) *obs.Trace { return obs.New(name) }

// ServeMetrics starts an HTTP listener on addr (":0" picks a free port;
// the returned server's Addr reports the bound address) exposing the
// process-wide metrics registry as Prometheus text on /metrics, expvar on
// /debug/vars, and net/http/pprof under /debug/pprof/. Close the returned
// server to stop it.
func ServeMetrics(addr string) (*obs.Server, error) {
	return obs.ServeMetrics(addr, obs.Default)
}

// WriteTrace serializes a finished trace as JSONL events (one meta line,
// one line per span in deterministic pre-order, and a final snapshot of
// the process-wide metrics registry). The format is read back by
// obs.ReadJSONL and summarized by cmd/tracecat.
func WriteTrace(w io.Writer, t *obs.Trace) error {
	root := t.Root()
	if root == nil {
		return fmt.Errorf("m2td: WriteTrace on nil trace")
	}
	return obs.WriteJSONL(w, root.Data(), obs.Default.Snapshot())
}

// MetricsSnapshot returns a point-in-time copy of the process-wide
// metrics registry (counter/gauge values and histogram summaries),
// keyed by metric name.
func MetricsSnapshot() map[string]any { return obs.Default.Snapshot() }
