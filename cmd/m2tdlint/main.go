// Command m2tdlint runs the repository's custom invariant analyzers
// (internal/lint) over the module: determinism of the kernel packages,
// context propagation, obs span hygiene, floating-point comparison
// discipline, tensor quarantine safety, lock discipline and goroutine
// lifecycles in the serving/distributed layers, wire-contract
// completeness, atomic-store routing, and metric-name hygiene. See
// DESIGN.md §8 and §15 for the rule tables and the //lint:allow
// suppression policy.
//
// Usage:
//
//	m2tdlint [flags] [packages]
//
//	-json             emit findings as a JSON array (file/line/col/analyzer/message)
//	-sarif path       also write findings as SARIF 2.1.0 to path (always written, even when clean)
//	-analyzers list   comma-separated subset of analyzers to run (default: all)
//	-fix              apply suggested fixes, then re-run and report what remains
//	-changed ref      lint only packages with .go files changed since the git ref
//	-list             print the available analyzers and exit
//
// Packages default to ./... resolved from the enclosing module root.
// Exit status: 0 = clean, 1 = findings, 2 = usage or load failure.
// Under -fix the exit status reflects the POST-fix state: fixable
// findings that were repaired do not fail the run.
//
// The -json mode exists so future tooling can diff lint findings across
// commits the same way BENCH_*.json snapshots diff kernel performance;
// -sarif feeds code-scanning UIs, and -changed keeps PR CI latency
// proportional to the diff.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("m2tdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	sarifPath := fs.String("sarif", "", "also write findings as SARIF 2.1.0 to this path")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	fix := fs.Bool("fix", false, "apply suggested fixes, then re-run")
	changed := fs.String("changed", "", "lint only packages changed since this git ref")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *names != "" {
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a := lint.ByName(n)
			if a == nil {
				fmt.Fprintf(stderr, "m2tdlint: unknown analyzer %q\n", n)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.ModuleRoot("")
	if err != nil {
		fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if *changed != "" {
		if len(patterns) > 0 {
			fmt.Fprintln(stderr, "m2tdlint: -changed and explicit packages are mutually exclusive")
			return 2
		}
		patterns, err = lint.ChangedPatterns(root, *changed)
		if err != nil {
			fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
			return 2
		}
		if len(patterns) == 0 {
			fmt.Fprintf(stderr, "m2tdlint: no Go packages changed since %s\n", *changed)
			return emitResults(stdout, stderr, root, nil, 0, analyzers, *jsonOut, *sarifPath)
		}
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
		return 2
	}

	diags := lint.RunPackages(pkgs, analyzers)

	if *fix {
		fixed, err := lint.ApplyFixes(pkgs, diags)
		if err != nil {
			fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
			return 2
		}
		if len(fixed) > 0 {
			for path, content := range fixed {
				if err := os.WriteFile(path, content, 0o644); err != nil {
					fmt.Fprintf(stderr, "m2tdlint: writing fix: %v\n", err)
					return 2
				}
				fmt.Fprintf(stderr, "m2tdlint: fixed %s\n", path)
			}
			// Fixes are textual; re-loading and re-running is the proof
			// they worked (and surfaces anything they could not cure).
			pkgs, err = lint.Load(root, patterns...)
			if err != nil {
				fmt.Fprintf(stderr, "m2tdlint: reload after fixes: %v\n", err)
				return 2
			}
			diags = lint.RunPackages(pkgs, analyzers)
		}
	}

	return emitResults(stdout, stderr, root, diags, len(pkgs), analyzers, *jsonOut, *sarifPath)
}

// emitResults renders diagnostics in the selected formats and converts
// them into the process exit status.
func emitResults(stdout, stderr io.Writer, root string, diags []lint.Diagnostic, npkgs int, analyzers []*lint.Analyzer, jsonOut bool, sarifPath string) int {
	if sarifPath != "" {
		f, err := os.Create(sarifPath)
		if err != nil {
			fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
			return 2
		}
		werr := lint.WriteSARIF(f, root, diags, analyzers)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "m2tdlint: writing SARIF: %v\n", werr)
			return 2
		}
	}
	if jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !jsonOut {
			fmt.Fprintf(stderr, "m2tdlint: %d finding(s) in %d package(s)\n", len(diags), npkgs)
		}
		return 1
	}
	return 0
}
