// Command m2tdlint runs the repository's custom invariant analyzers
// (internal/lint) over the module: determinism of the kernel packages,
// context propagation, obs span hygiene, floating-point comparison
// discipline, and tensor quarantine safety. See DESIGN.md §8 for the
// rule table and the //lint:allow suppression policy.
//
// Usage:
//
//	m2tdlint [flags] [packages]
//
//	-json             emit findings as a JSON array (file/line/col/analyzer/message)
//	-analyzers list   comma-separated subset of analyzers to run (default: all)
//	-list             print the available analyzers and exit
//
// Packages default to ./... resolved from the enclosing module root.
// Exit status: 0 = clean, 1 = findings, 2 = usage or load failure.
//
// The -json mode exists so future tooling can diff lint findings across
// commits the same way BENCH_*.json snapshots diff kernel performance.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("m2tdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as JSON")
	names := fs.String("analyzers", "", "comma-separated subset of analyzers to run (default: all)")
	list := fs.Bool("list", false, "print the available analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := lint.All
	if *names != "" {
		analyzers = nil
		for _, n := range strings.Split(*names, ",") {
			n = strings.TrimSpace(n)
			a := lint.ByName(n)
			if a == nil {
				fmt.Fprintf(stderr, "m2tdlint: unknown analyzer %q\n", n)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := lint.ModuleRoot("")
	if err != nil {
		fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(root, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
		return 2
	}

	diags := lint.RunPackages(pkgs, analyzers)
	if *jsonOut {
		findings := make([]finding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "m2tdlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "m2tdlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
		return 1
	}
	return 0
}
