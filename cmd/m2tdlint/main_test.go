package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The CLI is tested in-process through run(), against the golden
// packages under internal/lint/testdata/src (stable, deliberate
// violations) and against the repository itself (must be clean).

const goldenFloatCmp = "./internal/lint/testdata/src/floatcmp"

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{
		"determinism", "ctxprop", "spans", "floatcmp", "quarantine",
		"locks", "goroleak", "wirecompat", "atomicstore", "metrichygiene",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestFindingsExitCodeAndText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "floatcmp", goldenFloatCmp}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[floatcmp]") {
		t.Errorf("text output missing [floatcmp] tag:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-analyzers", "floatcmp", goldenFloatCmp}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty findings array for the golden package")
	}
	for _, f := range findings {
		if f.Analyzer != "floatcmp" {
			t.Errorf("finding from analyzer %q, want floatcmp only", f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// The ctxprop golden package is clean under the quarantine analyzer.
	code := run([]string{"-json", "-analyzers", "quarantine", "./internal/lint/testdata/src/ctxprop"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (clean)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want \"[]\"", got)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

// TestSARIFOutput verifies -sarif writes a valid SARIF 2.1.0 log with
// repo-relative URIs alongside the normal text output, and that a clean
// run still writes the (empty-results) file — CI uploads it either way.
func TestSARIFOutput(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m2tdlint.sarif")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-sarif", path, "-analyzers", "floatcmp", goldenFloatCmp}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading SARIF output: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(b, &log); err != nil {
		t.Fatalf("SARIF output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "m2tdlint" {
		t.Errorf("driver name = %q", run0.Tool.Driver.Name)
	}
	// The rule table covers the analyzers that ran plus the synthetic
	// directive-hygiene rule.
	ruleIDs := map[string]bool{}
	for _, r := range run0.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["floatcmp"] || !ruleIDs["m2tdlint"] || len(ruleIDs) != 2 {
		t.Errorf("rule table = %v, want exactly {floatcmp, m2tdlint}", ruleIDs)
	}
	if len(run0.Results) == 0 {
		t.Fatal("SARIF results empty for the golden package")
	}
	for _, r := range run0.Results {
		if r.RuleID != "floatcmp" {
			t.Errorf("result ruleId = %q, want floatcmp", r.RuleID)
		}
		uri := r.Locations[0].PhysicalLocation.ArtifactLocation.URI
		if filepath.IsAbs(uri) || !strings.HasPrefix(uri, "internal/lint/testdata/") {
			t.Errorf("URI %q is not repo-relative", uri)
		}
	}

	// Clean run: the file must still appear, with zero results.
	cleanPath := filepath.Join(dir, "clean.sarif")
	stdout.Reset()
	stderr.Reset()
	code = run([]string{"-sarif", cleanPath, "-analyzers", "quarantine", "./internal/lint/testdata/src/ctxprop"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("clean run exit = %d\nstderr: %s", code, stderr.String())
	}
	if _, err := os.Stat(cleanPath); err != nil {
		t.Errorf("clean run did not write the SARIF file: %v", err)
	}
}

// TestChangedAgainstHead exercises -changed plumbing: HEAD-vs-HEAD has
// no changed packages, so the run reports clean without loading.
func TestChangedAgainstHead(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-changed", "HEAD", "-analyzers", "floatcmp"}, &stdout, &stderr)
	// Exit 0 whether the working tree is pristine (no packages) or
	// carries clean in-progress edits; only real findings may fail this.
	if code != 0 {
		t.Fatalf("-changed HEAD exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if code := run([]string{"-changed", "HEAD", "./..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("-changed with explicit packages exit = %d, want 2 (usage)", code)
	}
}

// TestRepoCleanViaCLI mirrors the CI invocation: the whole module under
// the full suite must exit 0.
func TestRepoCleanViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("m2tdlint ./... exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
