package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The CLI is tested in-process through run(), against the golden
// packages under internal/lint/testdata/src (stable, deliberate
// violations) and against the repository itself (must be clean).

const goldenFloatCmp = "./internal/lint/testdata/src/floatcmp"

func TestListAnalyzers(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exit code = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{"determinism", "ctxprop", "spans", "floatcmp", "quarantine"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestFindingsExitCodeAndText(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-analyzers", "floatcmp", goldenFloatCmp}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "[floatcmp]") {
		t.Errorf("text output missing [floatcmp] tag:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "finding(s)") {
		t.Errorf("stderr missing findings summary: %s", stderr.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "-analyzers", "floatcmp", goldenFloatCmp}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)\nstderr: %s", code, stderr.String())
	}
	var findings []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) == 0 {
		t.Fatal("-json produced an empty findings array for the golden package")
	}
	for _, f := range findings {
		if f.Analyzer != "floatcmp" {
			t.Errorf("finding from analyzer %q, want floatcmp only", f.Analyzer)
		}
		if f.File == "" || f.Line == 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
}

func TestJSONCleanIsEmptyArray(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// The ctxprop golden package is clean under the quarantine analyzer.
	code := run([]string{"-json", "-analyzers", "quarantine", "./internal/lint/testdata/src/ctxprop"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (clean)\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want \"[]\"", got)
	}
}

func TestUnknownAnalyzer(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-analyzers", "nosuch"}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2 (usage error)", code)
	}
	if !strings.Contains(stderr.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message: %s", stderr.String())
	}
}

// TestRepoCleanViaCLI mirrors the CI invocation: the whole module under
// the full suite must exit 0.
func TestRepoCleanViaCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module lint in -short mode")
	}
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 0 {
		t.Fatalf("m2tdlint ./... exit code = %d, want 0\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
}
