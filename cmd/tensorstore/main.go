// Command tensorstore manages an on-disk catalog of ensemble tensors and
// Tucker decompositions (the block-based store of internal/store), hosts
// that catalog as a long-running campaign server, and talks to a running
// server through the typed /v1/ API.
//
// Catalog usage:
//
//	tensorstore -dir ./tensors put -name ens -system lorenz -res 8 -budget 100
//	tensorstore -dir ./tensors ls
//	tensorstore -dir ./tensors info -name ens
//	tensorstore -dir ./tensors decompose -name ens -rank 3 -out ens-dec
//	tensorstore -dir ./tensors dump -name ens | head
//	tensorstore -dir ./tensors rm -name ens
//	tensorstore -dir ./tensors import -name x -shape 4,4,4 < cells.csv
//
// Server usage:
//
//	tensorstore -dir ./tensors serve -addr 127.0.0.1:8642
//
// Client usage (against a running server):
//
//	tensorstore submit -addr http://127.0.0.1:8642 -system lorenz -res 8 -rank 3 -wait
//	tensorstore status -addr http://127.0.0.1:8642 -job j1
//	tensorstore result -addr http://127.0.0.1:8642 -job j1
//	tensorstore predict -addr http://127.0.0.1:8642 -job j1 -params 0.5,1.0,2.0
//	tensorstore jobs -addr http://127.0.0.1:8642
//	tensorstore stats -addr http://127.0.0.1:8642
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	m2td "repro"
	"repro/api"
	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tensor"
)

func main() {
	m2td.MaybeDistWorker()
	dir := flag.String("dir", "./tensors", "store directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	cmd, rest := args[0], args[1:]

	// Client commands talk to a remote server and never open the store.
	switch cmd {
	case "submit", "status", "result", "predict", "jobs", "stats":
		if err := clientCmd(cmd, rest); err != nil {
			fatal(err)
		}
		return
	}

	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	switch cmd {
	case "put":
		err = put(st, rest)
	case "import":
		err = importCmd(st, rest, os.Stdin)
	case "ls":
		err = ls(st)
	case "info":
		err = info(st, rest)
	case "dump":
		err = dump(st, rest)
	case "decompose":
		err = decompose(st, rest)
	case "rm":
		err = rm(st, rest)
	case "serve":
		err = serveCmd(st, rest)
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tensorstore [-dir DIR] {put|import|ls|info|dump|decompose|rm|serve|submit|status|result|predict|jobs|stats} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorstore:", err)
	os.Exit(1)
}

func put(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	system := fs.String("system", "double-pendulum", "dynamical system")
	res := fs.Int("res", 8, "grid resolution per parameter")
	samples := fs.Int("samples", 8, "time samples")
	scheme := fs.String("scheme", "random", "sampling scheme: random, grid, slice")
	budget := fs.Int("budget", 64, "simulation budget")
	seed := fs.Int64("seed", 1, "sampling seed; the counter-based generator makes the sampled set byte-for-byte reproducible for a given seed, across runs and platforms")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("put: -name is required")
	}
	sys, err := dynsys.ByName(*system)
	if err != nil {
		return err
	}
	space := ensemble.NewSpace(sys, *res, *samples)
	// Counter-based (stateless) randomness: the stream is a pure function
	// of the seed, so identical invocations store identical tensors.
	rng := ensemble.CounterRand(*seed)
	var sims []ensemble.Sim
	switch *scheme {
	case "random":
		sims = ensemble.RandomSample(space, *budget, rng)
	case "grid":
		sims = ensemble.GridSample(space, *budget)
	case "slice":
		sims = ensemble.SliceSample(space, *budget, rng)
	default:
		return fmt.Errorf("put: unknown scheme %q", *scheme)
	}
	se := ensemble.Encode(space, sims)
	if err := st.SaveSparse(*name, se.Tensor); err != nil {
		return err
	}
	fmt.Printf("stored %q: %s ensemble, %d sims, %d cells\n", *name, *system, se.NumSims, se.Tensor.NNZ())
	return nil
}

func ls(st *store.Store) error {
	names, err := st.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func info(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("info: -name is required")
	}
	if t, err := st.LoadSparse(*name); err == nil {
		fmt.Printf("%s: sparse tensor, shape %v, %d cells, density %.3g, norm %.6g\n",
			*name, t.Shape, t.NNZ(), t.Density(), t.Norm())
		return nil
	}
	if t, err := st.LoadDense(*name); err == nil {
		fmt.Printf("%s: dense tensor, shape %v, norm %.6g\n", *name, t.Shape, t.Norm())
		return nil
	}
	if d, err := st.LoadDecomposition(*name); err == nil {
		fmt.Printf("%s: Tucker decomposition, core shape %v, ranks %v\n", *name, d.Core.Shape, d.Ranks)
		return nil
	}
	return fmt.Errorf("info: cannot read %q as any known kind", *name)
}

func dump(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("dump: -name is required")
	}
	t, err := st.LoadSparse(*name)
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	header := make([]string, t.Order()+1)
	for i := range header[:t.Order()] {
		header[i] = fmt.Sprintf("mode%d", i)
	}
	header[t.Order()] = "value"
	if err := w.Write(header); err != nil {
		return err
	}
	var werr error
	t.Each(func(idx []int, v float64) {
		if werr != nil {
			return
		}
		row := make([]string, 0, len(idx)+1)
		for _, i := range idx {
			row = append(row, strconv.Itoa(i))
		}
		row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		werr = w.Write(row)
	})
	if werr != nil {
		return werr
	}
	w.Flush()
	return w.Error()
}

func decompose(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	name := fs.String("name", "", "input sparse tensor (required)")
	out := fs.String("out", "", "output decomposition name (required)")
	rank := fs.Int("rank", 3, "uniform target rank")
	hooi := fs.Bool("hooi", false, "refine with HOOI iterations")
	sketch := fs.Float64("sketch", 0, "deterministic count-sketch keep fraction in (0, 1]; 0 = exact")
	sketchSeed := fs.Int64("sketch-seed", 1, "sketch hashing seed")
	par := fs.Int("parallel", 0, "worker-pool size for the decomposition kernels (0 = all CPUs, 1 = serial; results are identical for any value)")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("decompose: -name and -out are required")
	}
	t, err := st.LoadSparse(*name)
	if err != nil {
		return err
	}
	res, err := m2td.TuckerCtx(context.Background(), t, m2td.TuckerOptions{
		Rank:     *rank,
		HOOI:     *hooi,
		Sketch:   m2td.SketchConfig{KeepFrac: *sketch, Seed: *sketchSeed},
		Parallel: *par,
	})
	if err != nil {
		return err
	}
	if err := st.SaveDecomposition(*out, res.Decomposition); err != nil {
		return err
	}
	fit, err := res.Fit(t)
	if err != nil {
		return err
	}
	if res.Sketched {
		fmt.Printf("stored %q: ranks %v, fit %.6f (sketch kept %d of %d cells)\n",
			*out, res.Ranks, fit, res.SketchKept, res.SketchInput)
		return nil
	}
	fmt.Printf("stored %q: ranks %v, fit %.6f\n", *out, res.Ranks, fit)
	return nil
}

func rm(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("rm: -name is required")
	}
	return st.Delete(*name)
}

// importCmd reads CSV rows of "idx0,idx1,…,value" (an optional header row
// is skipped) from r and stores them as a sparse tensor with the given
// shape — the inverse of dump.
func importCmd(st *store.Store, args []string, r io.Reader) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	shapeArg := fs.String("shape", "", "comma-separated mode sizes (required)")
	fs.Parse(args)
	if *name == "" || *shapeArg == "" {
		return fmt.Errorf("import: -name and -shape are required")
	}
	var shape tensor.Shape
	for _, part := range strings.Split(*shapeArg, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return fmt.Errorf("import: bad mode size %q", part)
		}
		shape = append(shape, d)
	}
	t := tensor.NewSparse(shape)
	cr := csv.NewReader(r)
	order := shape.Order()
	idx := make([]int, order)
	rowNum := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("import: row %d: %v", rowNum+1, err)
		}
		rowNum++
		if len(row) != order+1 {
			return fmt.Errorf("import: row %d has %d fields, want %d", rowNum, len(row), order+1)
		}
		// Skip a header row (non-numeric first field) if present.
		if _, err := strconv.Atoi(strings.TrimSpace(row[0])); err != nil && rowNum == 1 {
			continue
		}
		for k := 0; k < order; k++ {
			i, err := strconv.Atoi(strings.TrimSpace(row[k]))
			if err != nil {
				return fmt.Errorf("import: row %d field %d: %v", rowNum, k, err)
			}
			if i < 0 || i >= shape[k] {
				return fmt.Errorf("import: row %d index %d out of range for mode %d", rowNum, i, k)
			}
			idx[k] = i
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(row[order]), 64)
		if err != nil {
			return fmt.Errorf("import: row %d value: %v", rowNum, err)
		}
		t.Append(idx, v)
	}
	if err := st.SaveSparse(*name, t); err != nil {
		return err
	}
	fmt.Printf("stored %q: shape %v, %d cells\n", *name, shape, t.NNZ())
	return nil
}

// serveCmd hosts the store as a campaign server until SIGINT/SIGTERM,
// then drains gracefully.
func serveCmd(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8642", "listen address")
	queue := fs.Int("queue", 0, "max queued campaigns (0 = default)")
	quota := fs.Int("quota", 0, "per-tenant queued+running campaign quota (0 = default)")
	cacheSize := fs.Int("cache", 0, "decomposition LRU capacity (0 = default)")
	executors := fs.Int("executors", 0, "concurrent campaign limit (0 = default)")
	par := fs.Int("parallel", 0, "per-campaign kernel worker-pool size (0 = all CPUs)")
	jobTimeout := fs.Duration("job-timeout", 0, "default per-campaign wall-clock bound (0 = none)")
	distSims := fs.Int("dist-sims", 0, "auto-dispatch campaigns with at least this many simulations onto the distributed engine (0 = never)")
	distWorkers := fs.Int("dist-workers", 0, "worker processes for auto-dispatched campaigns (0 = default)")
	drain := fs.Duration("drain", time.Minute, "graceful-drain bound on shutdown")
	fs.Parse(args)

	s, err := serve.New(serve.Options{
		Store:       st,
		MaxQueue:    *queue,
		TenantQuota: *quota,
		CacheSize:   *cacheSize,
		Executors:   *executors,
		Parallel:    *par,
		JobTimeout:  *jobTimeout,
		DistSims:    *distSims,
		DistWorkers: *distWorkers,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	s.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("tensorstore: serving /v1 on http://%s (store %s)\n", ln.Addr(), st.Dir())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way
	fmt.Fprintln(os.Stderr, "tensorstore: draining")
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	drainErr := s.Shutdown(dctx)
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer hcancel()
	_ = srv.Shutdown(hctx)
	return drainErr
}

// clientCmd runs one typed-API client command against a running server.
func clientCmd(cmd string, args []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8642", "server base URL")
	tenant := fs.String("tenant", "", "tenant identity sent as "+api.TenantHeader)
	job := fs.String("job", "", "job ID (status, result, predict)")
	wait := fs.Duration("wait", 0, "status: long-poll up to this duration; submit: block until the campaign finishes")
	params := fs.String("params", "", "predict: comma-separated physical parameter values")

	// Submit-only campaign flags.
	system := fs.String("system", "", "dynamical system (server default when empty)")
	res := fs.Int("res", 0, "grid resolution per parameter")
	samples := fs.Int("samples", 0, "time samples")
	rank := fs.Int("rank", 0, "uniform Tucker rank")
	method := fs.String("method", "", "decomposition method")
	pivot := fs.String("pivot", "", "pivot dimension name")
	seed := fs.Int64("seed", 0, "sampling seed")
	sketch := fs.Float64("sketch", 0, "count-sketch keep fraction in (0, 1]; 0 = exact")
	sketchSeed := fs.Int64("sketch-seed", 0, "sketch hashing seed")
	dist := fs.Int("dist", 0, "distributed worker processes; 0 leaves dispatch to the server")
	distShards := fs.Int("dist-shards", 0, "distributed shard count (0 = derived from workers)")
	accSims := fs.Int("acc-sims", 0, "sampled accuracy-estimate simulations (0 = skip accuracy)")
	priority := fs.Int("priority", 0, "queue priority (higher runs first)")
	timeout := fs.Duration("timeout", 0, "per-campaign wall-clock bound")
	fs.Parse(args)

	client := api.NewClient(*addr)
	client.Tenant = *tenant
	ctx := context.Background()

	switch cmd {
	case "submit":
		spec := api.CampaignSpec{
			System:             *system,
			Resolution:         *res,
			TimeSamples:        *samples,
			Rank:               *rank,
			Method:             *method,
			Pivot:              *pivot,
			Seed:               *seed,
			AccuracySampleSims: *accSims,
			TimeoutMS:          timeout.Milliseconds(),
		}
		if *sketch > 0 {
			spec.Sketch = api.SketchSpec{KeepFrac: *sketch, Seed: *sketchSeed}
		}
		if *dist > 0 {
			spec.Distributed = &api.DistSpec{Workers: *dist, Shards: *distShards}
		}
		sub, err := client.Submit(ctx, api.SubmitRequest{Tenant: *tenant, Priority: *priority, Campaign: spec})
		if err != nil {
			return err
		}
		if *wait == 0 {
			return printJSON(sub)
		}
		if _, err := client.Wait(ctx, sub.JobID, 250*time.Millisecond); err != nil {
			return err
		}
		result, err := client.Result(ctx, sub.JobID)
		if err != nil {
			return err
		}
		return printJSON(result)
	case "status":
		requireJob(fs, *job)
		st, err := client.Status(ctx, *job, *wait)
		if err != nil {
			return err
		}
		return printJSON(st)
	case "result":
		requireJob(fs, *job)
		result, err := client.Result(ctx, *job)
		if err != nil {
			return err
		}
		return printJSON(result)
	case "predict":
		requireJob(fs, *job)
		var values []float64
		for _, part := range strings.Split(*params, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("predict: bad -params value %q", part)
			}
			values = append(values, v)
		}
		pred, err := client.Predict(ctx, *job, values)
		if err != nil {
			return err
		}
		return printJSON(pred)
	case "jobs":
		jobs, err := client.Jobs(ctx)
		if err != nil {
			return err
		}
		return printJSON(jobs)
	case "stats":
		stats, err := client.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(stats)
	}
	return fmt.Errorf("unknown client command %q", cmd)
}

func requireJob(fs *flag.FlagSet, job string) {
	if job == "" {
		fmt.Fprintf(os.Stderr, "tensorstore %s: -job is required\n", fs.Name())
		os.Exit(2)
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
