// Command tensorstore manages an on-disk catalog of ensemble tensors and
// Tucker decompositions (the block-based store of internal/store).
//
// Usage:
//
//	tensorstore -dir ./tensors put -name ens -system lorenz -res 8 -budget 100
//	tensorstore -dir ./tensors ls
//	tensorstore -dir ./tensors info -name ens
//	tensorstore -dir ./tensors decompose -name ens -rank 3 -out ens-dec
//	tensorstore -dir ./tensors dump -name ens | head
//	tensorstore -dir ./tensors rm -name ens
//	tensorstore -dir ./tensors import -name x -shape 4,4,4 < cells.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/store"
	"repro/internal/tensor"
	"repro/internal/tucker"
)

func main() {
	dir := flag.String("dir", "./tensors", "store directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	st, err := store.Open(*dir)
	if err != nil {
		fatal(err)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "put":
		err = put(st, rest)
	case "import":
		err = importCmd(st, rest, os.Stdin)
	case "ls":
		err = ls(st)
	case "info":
		err = info(st, rest)
	case "dump":
		err = dump(st, rest)
	case "decompose":
		err = decompose(st, rest)
	case "rm":
		err = rm(st, rest)
	default:
		usage()
	}
	if err != nil {
		fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: tensorstore [-dir DIR] {put|import|ls|info|dump|decompose|rm} [flags]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tensorstore:", err)
	os.Exit(1)
}

func put(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("put", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	system := fs.String("system", "double-pendulum", "dynamical system")
	res := fs.Int("res", 8, "grid resolution per parameter")
	samples := fs.Int("samples", 8, "time samples")
	scheme := fs.String("scheme", "random", "sampling scheme: random, grid, slice")
	budget := fs.Int("budget", 64, "simulation budget")
	seed := fs.Int64("seed", 1, "sampling seed")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("put: -name is required")
	}
	sys, err := dynsys.ByName(*system)
	if err != nil {
		return err
	}
	space := ensemble.NewSpace(sys, *res, *samples)
	rng := rand.New(rand.NewSource(*seed))
	var sims []ensemble.Sim
	switch *scheme {
	case "random":
		sims = ensemble.RandomSample(space, *budget, rng)
	case "grid":
		sims = ensemble.GridSample(space, *budget)
	case "slice":
		sims = ensemble.SliceSample(space, *budget, rng)
	default:
		return fmt.Errorf("put: unknown scheme %q", *scheme)
	}
	se := ensemble.Encode(space, sims)
	if err := st.SaveSparse(*name, se.Tensor); err != nil {
		return err
	}
	fmt.Printf("stored %q: %s ensemble, %d sims, %d cells\n", *name, *system, se.NumSims, se.Tensor.NNZ())
	return nil
}

func ls(st *store.Store) error {
	names, err := st.List()
	if err != nil {
		return err
	}
	for _, n := range names {
		fmt.Println(n)
	}
	return nil
}

func info(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("info: -name is required")
	}
	if t, err := st.LoadSparse(*name); err == nil {
		fmt.Printf("%s: sparse tensor, shape %v, %d cells, density %.3g, norm %.6g\n",
			*name, t.Shape, t.NNZ(), t.Density(), t.Norm())
		return nil
	}
	if t, err := st.LoadDense(*name); err == nil {
		fmt.Printf("%s: dense tensor, shape %v, norm %.6g\n", *name, t.Shape, t.Norm())
		return nil
	}
	if d, err := st.LoadDecomposition(*name); err == nil {
		fmt.Printf("%s: Tucker decomposition, core shape %v, ranks %v\n", *name, d.Core.Shape, d.Ranks)
		return nil
	}
	return fmt.Errorf("info: cannot read %q as any known kind", *name)
}

func dump(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("dump: -name is required")
	}
	t, err := st.LoadSparse(*name)
	if err != nil {
		return err
	}
	w := csv.NewWriter(os.Stdout)
	header := make([]string, t.Order()+1)
	for i := range header[:t.Order()] {
		header[i] = fmt.Sprintf("mode%d", i)
	}
	header[t.Order()] = "value"
	if err := w.Write(header); err != nil {
		return err
	}
	var werr error
	t.Each(func(idx []int, v float64) {
		if werr != nil {
			return
		}
		row := make([]string, 0, len(idx)+1)
		for _, i := range idx {
			row = append(row, strconv.Itoa(i))
		}
		row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		werr = w.Write(row)
	})
	if werr != nil {
		return werr
	}
	w.Flush()
	return w.Error()
}

func decompose(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("decompose", flag.ExitOnError)
	name := fs.String("name", "", "input sparse tensor (required)")
	out := fs.String("out", "", "output decomposition name (required)")
	rank := fs.Int("rank", 3, "uniform target rank")
	hooi := fs.Bool("hooi", false, "refine with HOOI iterations")
	par := fs.Int("parallel", 0, "worker-pool size for the decomposition kernels (0 = all CPUs, 1 = serial; results are identical for any value)")
	fs.Parse(args)
	if *name == "" || *out == "" {
		return fmt.Errorf("decompose: -name and -out are required")
	}
	t, err := st.LoadSparse(*name)
	if err != nil {
		return err
	}
	ranks := tucker.UniformRanks(t.Order(), *rank)
	var dec tucker.Decomposition
	if *hooi {
		dec = tucker.HOOI(t, ranks, tucker.HOOIOptions{Workers: *par})
	} else {
		dec = tucker.HOSVDWorkers(t, ranks, *par)
	}
	if err := st.SaveDecomposition(*out, dec); err != nil {
		return err
	}
	fit, err := tucker.FitOf(dec, t)
	if err != nil {
		return err
	}
	fmt.Printf("stored %q: ranks %v, fit %.6f\n", *out, dec.Ranks, fit)
	return nil
}

func rm(st *store.Store, args []string) error {
	fs := flag.NewFlagSet("rm", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	fs.Parse(args)
	if *name == "" {
		return fmt.Errorf("rm: -name is required")
	}
	return st.Delete(*name)
}

// importCmd reads CSV rows of "idx0,idx1,…,value" (an optional header row
// is skipped) from r and stores them as a sparse tensor with the given
// shape — the inverse of dump.
func importCmd(st *store.Store, args []string, r io.Reader) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	name := fs.String("name", "", "object name (required)")
	shapeArg := fs.String("shape", "", "comma-separated mode sizes (required)")
	fs.Parse(args)
	if *name == "" || *shapeArg == "" {
		return fmt.Errorf("import: -name and -shape are required")
	}
	var shape tensor.Shape
	for _, part := range strings.Split(*shapeArg, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || d < 1 {
			return fmt.Errorf("import: bad mode size %q", part)
		}
		shape = append(shape, d)
	}
	t := tensor.NewSparse(shape)
	cr := csv.NewReader(r)
	order := shape.Order()
	idx := make([]int, order)
	rowNum := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("import: row %d: %v", rowNum+1, err)
		}
		rowNum++
		if len(row) != order+1 {
			return fmt.Errorf("import: row %d has %d fields, want %d", rowNum, len(row), order+1)
		}
		// Skip a header row (non-numeric first field) if present.
		if _, err := strconv.Atoi(strings.TrimSpace(row[0])); err != nil && rowNum == 1 {
			continue
		}
		for k := 0; k < order; k++ {
			i, err := strconv.Atoi(strings.TrimSpace(row[k]))
			if err != nil {
				return fmt.Errorf("import: row %d field %d: %v", rowNum, k, err)
			}
			if i < 0 || i >= shape[k] {
				return fmt.Errorf("import: row %d index %d out of range for mode %d", rowNum, i, k)
			}
			idx[k] = i
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(row[order]), 64)
		if err != nil {
			return fmt.Errorf("import: row %d value: %v", rowNum, err)
		}
		t.Append(idx, v)
	}
	if err := st.SaveSparse(*name, t); err != nil {
		return err
	}
	fmt.Printf("stored %q: shape %v, %d cells\n", *name, shape, t.NNZ())
	return nil
}
