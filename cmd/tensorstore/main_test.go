package main

import (
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/tensor"
)

func testStoreWith(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestPutListInfoDeleteFlow(t *testing.T) {
	st := testStoreWith(t)
	if err := put(st, []string{"-name", "ens", "-system", "lorenz", "-res", "4", "-samples", "2", "-budget", "10"}); err != nil {
		t.Fatal(err)
	}
	if err := ls(st); err != nil {
		t.Fatal(err)
	}
	if err := info(st, []string{"-name", "ens"}); err != nil {
		t.Fatal(err)
	}
	if err := decompose(st, []string{"-name", "ens", "-out", "dec", "-rank", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := decompose(st, []string{"-name", "ens", "-out", "dec2", "-rank", "2", "-hooi"}); err != nil {
		t.Fatal(err)
	}
	if err := info(st, []string{"-name", "dec"}); err != nil {
		t.Fatal(err)
	}
	if err := dump(st, []string{"-name", "ens"}); err != nil {
		t.Fatal(err)
	}
	if err := rm(st, []string{"-name", "ens"}); err != nil {
		t.Fatal(err)
	}
	names, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "dec" {
		t.Fatalf("names after rm = %v", names)
	}
}

func TestCommandsRequireNames(t *testing.T) {
	st := testStoreWith(t)
	for name, fn := range map[string]func() error{
		"put":       func() error { return put(st, nil) },
		"info":      func() error { return info(st, nil) },
		"dump":      func() error { return dump(st, nil) },
		"decompose": func() error { return decompose(st, []string{"-name", "x"}) },
		"rm":        func() error { return rm(st, nil) },
	} {
		if err := fn(); err == nil {
			t.Errorf("%s without required flags accepted", name)
		}
	}
}

func TestPutRejectsBadInputs(t *testing.T) {
	st := testStoreWith(t)
	if err := put(st, []string{"-name", "x", "-system", "bogus"}); err == nil {
		t.Fatal("unknown system accepted")
	}
	if err := put(st, []string{"-name", "x", "-scheme", "bogus"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestInfoUnknownKind(t *testing.T) {
	st := testStoreWith(t)
	if err := info(st, []string{"-name", "missing"}); err == nil {
		t.Fatal("missing object accepted")
	}
	if !strings.Contains(infoErrText(st), "cannot read") {
		// sanity that the error path formats; best-effort
		t.Skip()
	}
}

func infoErrText(st *store.Store) string {
	err := info(st, []string{"-name", "missing"})
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestDecomposeMissingInput(t *testing.T) {
	st := testStoreWith(t)
	if err := decompose(st, []string{"-name", "missing", "-out", "o"}); err == nil {
		t.Fatal("missing input accepted")
	}
}

func TestDumpRoundtripValues(t *testing.T) {
	st := testStoreWith(t)
	sp := tensor.NewSparse(tensor.Shape{2, 2})
	sp.Append([]int{1, 0}, 2.5)
	if err := st.SaveSparse("tiny", sp); err != nil {
		t.Fatal(err)
	}
	if err := dump(st, []string{"-name", "tiny"}); err != nil {
		t.Fatal(err)
	}
}

func TestImportRoundtrip(t *testing.T) {
	st := testStoreWith(t)
	csvData := "mode0,mode1,value\n0,1,2.5\n2,0,-1\n"
	if err := importCmd(st, []string{"-name", "imp", "-shape", "3,2"}, strings.NewReader(csvData)); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadSparse("imp")
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 2 {
		t.Fatalf("NNZ = %d", got.NNZ())
	}
	d := got.ToDense()
	if d.At(0, 1) != 2.5 || d.At(2, 0) != -1 {
		t.Fatalf("values = %v", d.Data)
	}
}

// TestPutReproducible pins the put command's byte-for-byte guarantee:
// the counter-based sampler makes the stored tensor a pure function of
// the seed.
func TestPutReproducible(t *testing.T) {
	stA, stB := testStoreWith(t), testStoreWith(t)
	args := []string{"-name", "ens", "-system", "lorenz", "-res", "4", "-samples", "2", "-budget", "10", "-seed", "7"}
	if err := put(stA, args); err != nil {
		t.Fatal(err)
	}
	if err := put(stB, args); err != nil {
		t.Fatal(err)
	}
	a, err := stA.LoadSparse("ens")
	if err != nil {
		t.Fatal(err)
	}
	b, err := stB.LoadSparse("ens")
	if err != nil {
		t.Fatal(err)
	}
	if a.NNZ() != b.NNZ() || a.Norm() != b.Norm() {
		t.Fatalf("same-seed puts differ: %d/%g vs %d/%g", a.NNZ(), a.Norm(), b.NNZ(), b.Norm())
	}
	// A different seed must sample a different set.
	stC := testStoreWith(t)
	argsC := append(append([]string(nil), args[:len(args)-1]...), "8")
	if err := put(stC, argsC); err != nil {
		t.Fatal(err)
	}
	c, err := stC.LoadSparse("ens")
	if err != nil {
		t.Fatal(err)
	}
	if a.Norm() == c.Norm() {
		t.Fatal("seed 7 and seed 8 sampled identical ensembles")
	}
}

func TestDecomposeSketched(t *testing.T) {
	st := testStoreWith(t)
	if err := put(st, []string{"-name", "ens", "-system", "lorenz", "-res", "4", "-samples", "2", "-budget", "20"}); err != nil {
		t.Fatal(err)
	}
	if err := decompose(st, []string{"-name", "ens", "-out", "dec", "-rank", "2", "-sketch", "0.8"}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadDecomposition("dec"); err != nil {
		t.Fatal(err)
	}
}

func TestImportValidation(t *testing.T) {
	st := testStoreWith(t)
	if err := importCmd(st, nil, strings.NewReader("")); err == nil {
		t.Fatal("missing flags accepted")
	}
	if err := importCmd(st, []string{"-name", "x", "-shape", "0,2"}, strings.NewReader("")); err == nil {
		t.Fatal("bad shape accepted")
	}
	if err := importCmd(st, []string{"-name", "x", "-shape", "2,2"}, strings.NewReader("9,0,1\n")); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if err := importCmd(st, []string{"-name", "x", "-shape", "2,2"}, strings.NewReader("0,0\n")); err == nil {
		t.Fatal("short row accepted")
	}
	if err := importCmd(st, []string{"-name", "x", "-shape", "2,2"}, strings.NewReader("0,0,zap\n")); err == nil {
		t.Fatal("bad value accepted")
	}
}
