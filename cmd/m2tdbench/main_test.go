package main

import (
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/eval"
)

func TestInts(t *testing.T) {
	if got := ints(""); got != nil {
		t.Fatalf("ints(\"\") = %v, want nil", got)
	}
	if got := ints("1,2, 3"); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Fatalf("ints = %v", got)
	}
	if got := ints("42"); !reflect.DeepEqual(got, []int{42}) {
		t.Fatalf("ints = %v", got)
	}
}

func TestFirstInt(t *testing.T) {
	if got := firstInt(""); got != 0 {
		t.Fatalf("firstInt(\"\") = %d", got)
	}
	if got := firstInt("7,8"); got != 7 {
		t.Fatalf("firstInt = %d", got)
	}
}

func TestFloats(t *testing.T) {
	if got := floats(""); got != nil {
		t.Fatalf("floats(\"\") = %v, want nil", got)
	}
	if got := floats("1, 0.5,0.1"); !reflect.DeepEqual(got, []float64{1, 0.5, 0.1}) {
		t.Fatalf("floats = %v", got)
	}
	if got := firstFloat("0.25,0.1"); got != 0.25 {
		t.Fatalf("firstFloat = %v", got)
	}
	if got := firstFloat(""); got != 0 {
		t.Fatalf("firstFloat(\"\") = %v", got)
	}
}

func TestRunRejectsUnknownTable(t *testing.T) {
	if err := run(io.Discard, "99", eval.Config{}, "", "", "", "", ""); err == nil {
		t.Fatal("unknown table accepted")
	}
}

// tinyBase is a fast experiment configuration for CLI tests.
func tinyBase() eval.Config {
	cfg := eval.DefaultConfig("double-pendulum")
	cfg.Res = 5
	cfg.TimeSamples = 4
	cfg.Rank = 2
	return cfg
}

func TestRunAllTablesTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI table sweep")
	}
	base := tinyBase()
	for _, tb := range []string{"1", "3", "4", "5", "6", "7", "8", "fig6", "noise", "ranks", "extended", "pivotselect", "sketch"} {
		var b strings.Builder
		if err := run(&b, tb, base, "5", "2", "1,2", "1,0.5,0.1", ""); err != nil {
			t.Fatalf("table %s: %v", tb, err)
		}
		if b.Len() == 0 {
			t.Fatalf("table %s produced no output", tb)
		}
	}
}

func TestRunTable2WithCSVExport(t *testing.T) {
	base := tinyBase()
	csvPath := filepath.Join(t.TempDir(), "out.csv")
	var b strings.Builder
	if err := run(&b, "2", base, "5", "2", "", "", csvPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "M2TD-SELECT") {
		t.Fatal("CSV export missing scheme rows")
	}
}

func TestRunSketchTableWithCSVExport(t *testing.T) {
	base := tinyBase()
	csvPath := filepath.Join(t.TempDir(), "sketch.csv")
	var b strings.Builder
	if err := run(&b, "sketch", base, "5", "2", "", "1,0.5", csvPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "SKETCH SWEEP") {
		t.Fatal("sketch table missing its header")
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "keep_frac") {
		t.Fatal("sketch CSV export missing header row")
	}
}

func TestRunSeedsHelper(t *testing.T) {
	if err := runSeeds(tinyBase(), 2); err != nil {
		t.Fatal(err)
	}
}
