// Command m2tdbench regenerates the paper's evaluation tables
// (Tables II–VIII of Section VII) at configurable scale and prints them in
// the paper's row/column layout.
//
// Usage:
//
//	m2tdbench -table all                  # every table at default scale
//	m2tdbench -table 2 -res 12,16,20 -rank 2,4,6
//	m2tdbench -table 3 -workers 1,2,4,8,16
//	m2tdbench -table 5 -res 16
//	m2tdbench -table 2 -parallel 8        # 8-worker shared-memory pool
//	m2tdbench -table sketch               # sketch accuracy-vs-speedup sweep
//	m2tdbench -run -res 12 -timeout 2m    # one pipeline with a deadline
//	m2tdbench -run -sketch 0.1 -sketch-seed 3   # sketched pipeline
//	m2tdbench -run -checkpoint ./ckpt -resume
//	m2tdbench -run -fault-rate 0.1 -divergent-rate 0.02
//
// -run executes a single end-to-end pipeline instead of a table and
// prints the report, including the fault-tolerance accounting. -timeout
// bounds the whole run (the pipeline drains cooperatively and flushes
// its checkpoint on expiry or Ctrl-C); -checkpoint/-resume enable
// crash-safe restarts; -fault-rate/-divergent-rate inject seeded
// transient and divergent simulation faults for resilience testing.
//
// -workers sweeps the SIMULATED worker count of the distributed D-M2TD
// algorithm (Table III); -parallel sets the real shared-memory worker-pool
// size used by the decomposition kernels (0 = all CPUs, 1 = serial) and
// never changes results — only wall-clock.
//
// Default scale substitutes resolution 60–80 → 12–20 and rank 5/10/20 →
// 2/4/6 (see DESIGN.md); pass larger -res/-time/-rank values to approach
// paper scale, memory permitting.
package main

import (
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	m2td "repro"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faults"
	"repro/internal/parallel"
)

func main() {
	var (
		table   = flag.String("table", "all", "table to regenerate: 1..8, fig6, noise, ranks, extended, pivotselect, sketch, or 'all'")
		res     = flag.String("res", "", "comma-separated resolutions (table 2) or single base resolution")
		timeS   = flag.Int("time", 0, "time-mode size (defaults to the resolution)")
		rank    = flag.String("rank", "", "comma-separated ranks (table 2) or single base rank")
		workers = flag.String("workers", "", "comma-separated worker counts (table 3)")
		seed    = flag.Int64("seed", eval.DefaultSeed, "sampling seed")
		seeds   = flag.Int("seeds", 0, "run a multi-seed sweep of the base configuration with this many seeds instead of a table")
		csvOut  = flag.String("csv", "", "also export comparison rows as CSV to this file (tables 2 and 4)")
		estim   = flag.Int("estimate", 0, "paper-scale mode: factored core + this many sampled accuracy fibers (required beyond res ≈24)")
		par     = flag.Int("parallel", 0, "shared-memory worker-pool size for the decomposition kernels (0 = all CPUs, 1 = serial; results are identical for any value)")

		sketch     = flag.String("sketch", "", "sketch KeepFrac: one fraction with -run, a comma-separated sweep for -table sketch (empty = the sweep default)")
		sketchSeed = flag.Int64("sketch-seed", 0, "sketch sampling seed (0 = the run's -seed)")

		runOne     = flag.Bool("run", false, "execute a single end-to-end pipeline (instead of a table) and print the report")
		timeout    = flag.Duration("timeout", 0, "with -run: overall deadline; the pipeline drains cooperatively and flushes its checkpoint on expiry (0 = none)")
		checkpoint = flag.String("checkpoint", "", "with -run: directory for crash-safe simulation checkpoints")
		resume     = flag.Bool("resume", false, "with -run: resume from a compatible checkpoint in -checkpoint, skipping finished simulations")
		faultRate  = flag.Float64("fault-rate", 0, "with -run: injected transient-failure rate per simulation (seeded, deterministic)")
		divRate    = flag.Float64("divergent-rate", 0, "with -run: injected divergent (non-finite trajectory) rate per simulation")
		faultSeed  = flag.Int64("fault-seed", 1, "with -run: fault-injection seed")

		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars, and /debug/pprof/ on this address for the process lifetime (e.g. 127.0.0.1:0 for a free port)")
		traceOut    = flag.String("trace-out", "", "with -run: record a stage-span trace and write it as JSONL to this file (summarize with cmd/tracecat)")

		distProcs   = flag.Int("dist-procs", 0, "with -run: decompose on this many real worker PROCESSES (the internal/distnet engine) instead of in-process")
		distShards  = flag.Int("dist-shards", 0, "with -run: fixed task-shard count, the determinism unit (0 = -dist-procs)")
		distAddr    = flag.String("dist-addr", "", "with -run: coordinator listen address (default 127.0.0.1:0)")
		distDir     = flag.String("dist-dir", "", "with -run: shared artifact catalog directory (default: a temp dir; a stable path enables resume)")
		killWorkers = flag.Int("kill-workers", 0, "with -run -dist-procs: SIGKILL this many workers mid-task at seeded points (kill-and-recover drill)")
		killSeed    = flag.Int64("kill-seed", 0, "with -kill-workers: kill-lottery seed (0 = -seed)")
	)
	m2td.MaybeDistWorker()
	flag.Parse()
	parallel.SetDefaultWorkers(*par)

	stopMetrics, err := startMetrics(*metricsAddr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "m2tdbench:", err)
		os.Exit(1)
	}
	defer stopMetrics()

	if *runOne {
		cfg := m2td.Config{
			Resolution:         firstInt(*res),
			TimeSamples:        *timeS,
			Rank:               firstInt(*rank),
			Seed:               *seed,
			Parallel:           *par,
			CheckpointDir:      *checkpoint,
			Resume:             *resume,
			SkipAccuracy:       *estim == 0 && firstInt(*res) > 24,
			AccuracySampleSims: *estim,
			Trace:              *traceOut != "",
		}
		if *faultRate > 0 || *divRate > 0 {
			cfg.Faults = &faults.Config{Seed: *faultSeed, TransientRate: *faultRate, DivergentRate: *divRate}
		}
		if frac := firstFloat(*sketch); frac > 0 {
			cfg.Sketch = m2td.SketchConfig{KeepFrac: frac, Seed: *sketchSeed}
		}
		if *distProcs > 0 {
			cfg.Distributed = &m2td.DistributedConfig{
				Workers:     *distProcs,
				Shards:      *distShards,
				Addr:        *distAddr,
				WorkDir:     *distDir,
				KillWorkers: *killWorkers,
				KillSeed:    *killSeed,
			}
		}
		if err := runPipeline(cfg, *timeout, *traceOut); err != nil {
			stopMetrics()
			fmt.Fprintln(os.Stderr, "m2tdbench:", err)
			os.Exit(1)
		}
		return
	}

	base := eval.Config{}
	singleRes := firstInt(*res)
	if singleRes > 0 {
		base = eval.DefaultConfig("double-pendulum")
		base.Res = singleRes
		base.TimeSamples = singleRes
		if *timeS > 0 {
			base.TimeSamples = *timeS
		}
		if r := firstInt(*rank); r > 0 {
			base.Rank = r
		}
		base.Seed = *seed
		base.EstimateSims = *estim
	}

	if *seeds > 0 {
		if err := runSeeds(base, *seeds); err != nil {
			fmt.Fprintln(os.Stderr, "m2tdbench:", err)
			os.Exit(1)
		}
		return
	}

	tables := strings.Split(*table, ",")
	if *table == "all" {
		tables = []string{"1", "2", "3", "4", "5", "6", "7", "8", "fig6"}
	}
	for i, tb := range tables {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		if err := run(os.Stdout, tb, base, *res, *rank, *workers, *sketch, *csvOut); err != nil {
			fmt.Fprintf(os.Stderr, "m2tdbench: table %s: %v\n", tb, err)
			os.Exit(1)
		}
		fmt.Printf("\n[table %s regenerated in %v]\n", tb, time.Since(start).Round(time.Millisecond))
	}
}

// runPipeline executes one end-to-end pipeline under an interruptible
// context (Ctrl-C and -timeout both cancel cooperatively: in-flight
// simulations finish, the checkpoint is flushed, and the run reports a
// wrapped context error) and prints the report with its fault-tolerance
// accounting.
func runPipeline(cfg m2td.Config, timeout time.Duration, traceOut string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	start := time.Now()
	report, err := m2td.RunCtx(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("system=%s res=%d rank=%d seed=%d\n",
		report.Space.Sys.Name(), cfg.Resolution, cfg.Rank, cfg.Seed)
	if !math.IsNaN(report.Accuracy) {
		fmt.Printf("accuracy           %.4f\n", report.Accuracy)
	}
	fmt.Printf("simulations        %d (executed %d, restored %d, retried %d, failed %d)\n",
		report.NumSims, report.ExecutedSims, report.RestoredSims, report.RetriedSims, report.FailedSims)
	fmt.Printf("quarantined cells  %d\n", report.QuarantinedCells)
	if st := report.SketchStats; st != nil {
		fmt.Printf("sketch             keep=%.0f%% seed=%d — join %d/%d, sub1 %d/%d, sub2 %d/%d cells kept\n",
			st.KeepFrac*100, st.Seed,
			st.Join.Kept, st.Join.InputNNZ,
			st.Sub1.Kept, st.Sub1.InputNNZ,
			st.Sub2.Kept, st.Sub2.InputNNZ)
	}
	fmt.Printf("effective density  %.4f / %.4f\n", report.EffectiveDensity1, report.EffectiveDensity2)
	if fs := report.FaultStats; fs != nil {
		fmt.Printf("injected faults    transient sims %d (failures %d), divergent %d, panicked %d, delayed %d\n",
			fs.TransientSims, fs.TransientFailures, fs.DivergentSims, fs.PanickedSims, fs.DelayedSims)
	}
	fmt.Printf("join cells         %d\n", report.JoinCells)
	if ds := report.Distributed; ds != nil {
		fmt.Printf("dist workers       %d (lost %d, requeues %d, skipped tasks %d)\n",
			ds.Workers, ds.WorkersLost, ds.Requeues, ds.TasksSkipped)
		fmt.Printf("dist phases        p1 %v, p2 %v, p3 %v\n",
			ds.Phase1.Round(time.Millisecond), ds.Phase2.Round(time.Millisecond), ds.Phase3.Round(time.Millisecond))
	}
	fmt.Printf("core fingerprint   %016x\n", decompFingerprint(report.Decomposition))
	fmt.Printf("sim %v, decomp %v, total %v\n",
		report.SimTime.Round(time.Millisecond), report.DecompTime.Round(time.Millisecond),
		time.Since(start).Round(time.Millisecond))
	return writeTrace(traceOut, report)
}

// decompFingerprint hashes the decomposition's exact bits (core then
// factors, FNV-1a over each float64's bit pattern), so two runs can be
// compared for BIT-identity from the shell — the CI chaos job diffs the
// fingerprint of a kill-workers run against an unkilled one.
func decompFingerprint(res *core.Result) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	for _, v := range res.Core.Data {
		word(v)
	}
	for _, f := range res.Factors {
		binary.LittleEndian.PutUint64(buf[:], uint64(f.Rows)<<32|uint64(f.Cols))
		h.Write(buf[:])
		for _, v := range f.Data {
			word(v)
		}
	}
	return h.Sum64()
}

// runSeeds executes the multi-seed sweep of the base configuration.
func runSeeds(base eval.Config, n int) error {
	if base.Res == 0 {
		base = eval.DefaultConfig("double-pendulum")
	}
	seedList := make([]int64, n)
	for i := range seedList {
		seedList[i] = base.Seed + int64(i)
	}
	sweep, err := eval.RunSeeds(base, seedList)
	if err != nil {
		return err
	}
	eval.RenderSeedSweep(os.Stdout, sweep)
	return nil
}

// exportCSV appends comparison rows to the CSV file when requested.
func exportCSV(path string, cmps []*eval.Comparison) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	return eval.ExportComparisonsCSV(f, cmps)
}

func run(out io.Writer, table string, base eval.Config, res, rank, workers, sketch, csvOut string) error {
	switch table {
	case "sketch":
		rows, err := eval.SketchSweep(base, floats(sketch))
		if err != nil {
			return err
		}
		eval.RenderSketchSweep(out, rows)
		if csvOut != "" {
			f, err := os.OpenFile(csvOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			return eval.ExportSketchSweepCSV(f, rows)
		}
	case "1":
		rows, err := eval.Table1(nil, ints(res))
		if err != nil {
			return err
		}
		eval.RenderTable1(out, rows)
	case "fig6":
		rows, err := eval.Fig6(base, nil)
		if err != nil {
			return err
		}
		eval.RenderFig6(out, rows)
	case "noise":
		if base.Res == 0 {
			base = eval.DefaultConfig("double-pendulum")
		}
		rows, err := eval.NoiseSweep(base, nil)
		if err != nil {
			return err
		}
		eval.RenderNoiseSweep(out, rows)
	case "ranks":
		rows, err := eval.RankSweep(base, ints(rank))
		if err != nil {
			return err
		}
		eval.RenderRankSweep(out, rows)
	case "pivotselect":
		system := "double-pendulum"
		if base.System != "" {
			system = base.System
		}
		pilotRes := 8
		if base.Res != 0 && base.Res < pilotRes {
			pilotRes = base.Res
		}
		rank := eval.DefaultRank
		if base.Rank != 0 {
			rank = base.Rank
		}
		scores, err := eval.SelectPivot(system, pilotRes, rank, 200, eval.DefaultSeed)
		if err != nil {
			return err
		}
		eval.RenderPivotScores(out, system, scores)
	case "extended":
		if base.Res == 0 {
			base = eval.DefaultConfig("double-pendulum")
		}
		cmp, err := eval.ExtendedComparison(base)
		if err != nil {
			return err
		}
		eval.RenderExtended(out, []*eval.Comparison{cmp})
	case "2":
		cmps, err := eval.Table2(base, ints(res), ints(rank))
		if err != nil {
			return err
		}
		eval.RenderTable2(out, cmps)
		if err := exportCSV(csvOut, cmps); err != nil {
			return err
		}
	case "3":
		rows, err := eval.Table3(base, ints(workers))
		if err != nil {
			return err
		}
		eval.RenderTable3(out, rows)
	case "4":
		cmps, err := eval.Table4(base, nil)
		if err != nil {
			return err
		}
		eval.RenderTable4(out, cmps)
		if err := exportCSV(csvOut, cmps); err != nil {
			return err
		}
	case "5":
		rows, err := eval.Table5(base, nil)
		if err != nil {
			return err
		}
		eval.RenderTable5(out, rows)
	case "6":
		rows, err := eval.Table6(base, nil)
		if err != nil {
			return err
		}
		eval.RenderTable6(out, rows)
	case "7":
		rows, err := eval.Table7(base, nil)
		if err != nil {
			return err
		}
		eval.RenderTable7(out, rows)
	case "8":
		rows, err := eval.Table8(base, nil)
		if err != nil {
			return err
		}
		eval.RenderTable8(out, rows)
	default:
		return fmt.Errorf("unknown table %q (want 1..8, fig6, noise, ranks, extended, pivotselect, sketch, or all)", table)
	}
	return nil
}

// ints parses a comma-separated integer list; empty input yields nil
// (which selects each table's default sweep).
func ints(s string) []int {
	if s == "" {
		return nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fmt.Fprintf(os.Stderr, "m2tdbench: bad integer %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// firstInt returns the first integer of a comma-separated list, or 0.
func firstInt(s string) int {
	vs := ints(s)
	if len(vs) == 0 {
		return 0
	}
	return vs[0]
}

// floats parses a comma-separated float list; empty input yields nil.
func floats(s string) []float64 {
	if s == "" {
		return nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "m2tdbench: bad float %q\n", part)
			os.Exit(2)
		}
		out = append(out, v)
	}
	return out
}

// firstFloat returns the first float of a comma-separated list, or 0.
func firstFloat(s string) float64 {
	vs := floats(s)
	if len(vs) == 0 {
		return 0
	}
	return vs[0]
}
