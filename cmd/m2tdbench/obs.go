package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	m2td "repro"
)

// startMetrics starts the metrics/pprof listener when addr is non-empty
// ("127.0.0.1:0" picks a free port) and returns a shutdown closure. The
// closure self-scrapes /metrics before closing and prints the sample
// count to stderr, so CI can assert the endpoint served real exposition
// without a second process.
func startMetrics(addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := m2td.ServeMetrics(addr)
	if err != nil {
		return nil, fmt.Errorf("metrics listener: %w", err)
	}
	fmt.Fprintf(os.Stderr, "m2tdbench: serving metrics on http://%s/metrics (pprof on /debug/pprof/)\n", srv.Addr)
	return func() {
		client := &http.Client{Timeout: 5 * time.Second}
		resp, err := client.Get("http://" + srv.Addr + "/metrics")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			fmt.Fprintf(os.Stderr, "m2tdbench: metrics scrape ok: %d samples\n", countSamples(body))
		} else {
			fmt.Fprintf(os.Stderr, "m2tdbench: metrics self-scrape failed: %v\n", err)
		}
		srv.Close()
	}, nil
}

// countSamples counts Prometheus exposition sample lines (non-comment,
// non-blank).
func countSamples(exposition []byte) int {
	n := 0
	sc := bufio.NewScanner(bytes.NewReader(exposition))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			n++
		}
	}
	return n
}

// writeTrace serializes the report's span trace as JSONL to path.
func writeTrace(path string, report *m2td.Report) error {
	if path == "" {
		return nil
	}
	if report.Trace == nil {
		return fmt.Errorf("trace output requested but the run recorded no trace")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	if err := m2td.WriteTrace(f, report.Trace); err != nil {
		f.Close()
		return fmt.Errorf("trace output: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("trace output: %w", err)
	}
	fmt.Fprintf(os.Stderr, "m2tdbench: trace written to %s\n", path)
	return nil
}
