package main

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// trace builds a small two-level trace and serializes it as JSONL.
func traceJSONL(t *testing.T, snapshot map[string]any) *bytes.Buffer {
	t.Helper()
	tr := obs.New("run")
	root := tr.Root()
	p := root.Start("partition")
	p.Add("sims", 64)
	p.SetGauge("allocs", 42)
	p.Finish()
	tr.Finish()
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, root.Data(), snapshot); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestSummarize(t *testing.T) {
	in := traceJSONL(t, map[string]any{"m2td_runs_total": 1})
	var out bytes.Buffer
	if err := summarize(in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"run",
		"partition",
		"sims=64",
		"~allocs=42",
		"2 spans",
		"metrics snapshot:",
		"m2td_runs_total",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("summary missing %q:\n%s", want, got)
		}
	}
	// The child is indented under the root.
	if !strings.Contains(got, "  partition") {
		t.Errorf("child span not indented:\n%s", got)
	}
}

func TestSummarizeNoSnapshot(t *testing.T) {
	in := traceJSONL(t, nil)
	var out bytes.Buffer
	if err := summarize(in, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "metrics snapshot") {
		t.Errorf("snapshot section rendered without a snapshot:\n%s", out.String())
	}
}

func TestSummarizeRejectsGarbage(t *testing.T) {
	if err := summarize(strings.NewReader("definitely not jsonl\n"), &bytes.Buffer{}); err == nil {
		t.Error("garbage input accepted")
	}
}
