// Command tracecat replays a structured trace log (the JSONL written by
// `m2tdbench -run -trace-out` or m2td.WriteTrace) and prints a
// human-readable summary: the stage-span tree with durations, counters,
// and gauges, followed by the process-wide metrics snapshot recorded at
// the end of the run.
//
// Usage:
//
//	tracecat trace.jsonl
//	m2tdbench -run -trace-out /dev/stdout 2>/dev/null | tracecat -
//
// The span tree's names, hierarchy, and counters are deterministic for a
// given configuration (only durations and gauges vary between runs), so
// two tracecat outputs of the same configuration diff cleanly on
// everything that matters.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecat <trace.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	var in io.Reader = os.Stdin
	if path := flag.Arg(0); path != "-" {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	if err := summarize(in, os.Stdout); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracecat:", err)
	os.Exit(1)
}

// summarize replays one trace log and writes the human-readable summary.
func summarize(r io.Reader, w io.Writer) error {
	root, snapshot, err := obs.ReadJSONL(r)
	if err != nil {
		return err
	}
	if root == nil {
		fmt.Fprintln(w, "(trace log carries no spans)")
	} else {
		spans := 0
		root.Walk(func(depth int, s *obs.SpanData) {
			spans++
			fmt.Fprintf(w, "%s%-*s %10s%s%s\n",
				strings.Repeat("  ", depth),
				28-2*depth, s.Name,
				time.Duration(s.DurNS).Round(time.Microsecond),
				kvs(" ", s.Counters),
				kvs(" ~", s.Gauges))
		})
		fmt.Fprintf(w, "\n%d spans, total %s\n", spans, time.Duration(root.DurNS).Round(time.Microsecond))
	}
	if snapshot != nil {
		fmt.Fprintln(w, "\nmetrics snapshot:")
		keys := make([]string, 0, len(snapshot))
		for k := range snapshot {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-40s %v\n", k, snapshot[k])
		}
	}
	return nil
}

// kvs renders a counter/gauge map in sorted key order, each entry
// prefixed with prefix ("~" marks non-deterministic gauges).
func kvs(prefix string, m map[string]int64) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s%s=%d", prefix, k, m[k])
	}
	return b.String()
}
