package main

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/dynsys"
)

func TestDumpTrajectoryCSV(t *testing.T) {
	sys := dynsys.NewLorenz()
	var b strings.Builder
	if err := dumpTrajectory(context.Background(), &b, sys, "", 3, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3 samples", len(lines))
	}
	if lines[0] != "sample,state0,state1,state2" {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestDumpTrajectoryJSON(t *testing.T) {
	sys := dynsys.NewSEIR()
	var b strings.Builder
	if err := dumpTrajectory(context.Background(), &b, sys, "0.3,0.2,0.1,0.01", 2, "json"); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["system"] != "seir" {
		t.Fatalf("system = %v", decoded["system"])
	}
	traj, ok := decoded["trajectory"].([]interface{})
	if !ok || len(traj) != 2 {
		t.Fatalf("trajectory = %v", decoded["trajectory"])
	}
}

func TestDumpTrajectoryErrors(t *testing.T) {
	sys := dynsys.NewLorenz()
	var b strings.Builder
	if err := dumpTrajectory(context.Background(), &b, sys, "1,2", 2, "csv"); err == nil {
		t.Fatal("wrong parameter count accepted")
	}
	if err := dumpTrajectory(context.Background(), &b, sys, "a,b,c,d", 2, "csv"); err == nil {
		t.Fatal("non-numeric parameters accepted")
	}
	if err := dumpTrajectory(context.Background(), &b, sys, "", 2, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestDumpEnsembleCSV(t *testing.T) {
	sys := dynsys.NewDoublePendulum()
	var b strings.Builder
	if err := dumpEnsemble(context.Background(), &b, sys, "grid", 16, 4, 2, 1, "csv"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// header + 16 sims × 2 timestamps
	if len(lines) != 1+32 {
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "phi1,phi2,m1,m2,t,value") {
		t.Fatalf("header = %q", lines[0])
	}
}

func TestDumpEnsembleJSON(t *testing.T) {
	sys := dynsys.NewLorenz()
	var b strings.Builder
	if err := dumpEnsemble(context.Background(), &b, sys, "random", 5, 4, 2, 1, "json"); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if decoded["numSims"].(float64) != 5 {
		t.Fatalf("numSims = %v", decoded["numSims"])
	}
}

func TestDumpEnsembleErrors(t *testing.T) {
	sys := dynsys.NewLorenz()
	var b strings.Builder
	if err := dumpEnsemble(context.Background(), &b, sys, "bogus", 5, 4, 2, 1, "csv"); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if err := dumpEnsemble(context.Background(), &b, sys, "random", 5, 4, 2, 1, "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
