// Command simgen runs the dynamical-system simulators directly: it dumps
// either a single trajectory or a sampled ensemble tensor as CSV/JSON for
// inspection and external tooling.
//
// Usage:
//
//	simgen -system lorenz -samples 20                 # reference trajectory
//	simgen -system double-pendulum -params 0.5,1,1,1  # specific parameters
//	simgen -system lorenz -ensemble -scheme random -budget 100 -res 8
//	simgen -ensemble -fault-rate 0.1 -timeout 30s     # resilience drill
//
// -timeout bounds the whole run with a deadline (Ctrl-C cancels too);
// the fan-out drains cooperatively instead of being killed mid-write.
// -fault-rate injects seeded transient simulation failures that are
// retried with backoff; the fault/retry accounting is printed to stderr
// so the data stream on stdout stays clean.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"repro/internal/dynsys"
	"repro/internal/ensemble"
	"repro/internal/faults"
	"repro/internal/obs"
)

func main() {
	var (
		system   = flag.String("system", "double-pendulum", "system: double-pendulum, triple-pendulum, lorenz")
		params   = flag.String("params", "", "comma-separated parameter values (defaults to the reference setting)")
		samples  = flag.Int("samples", 16, "number of trajectory samples")
		format   = flag.String("format", "csv", "output format: csv or json")
		ensemble = flag.Bool("ensemble", false, "emit a sampled ensemble tensor instead of a trajectory")
		scheme   = flag.String("scheme", "random", "ensemble sampling scheme: random, grid, slice")
		budget   = flag.Int("budget", 64, "ensemble simulation budget")
		res      = flag.Int("res", 8, "ensemble grid resolution per parameter")
		seed     = flag.Int64("seed", 1, "sampling seed")
		timeout  = flag.Duration("timeout", 0, "overall deadline; the run drains cooperatively on expiry or Ctrl-C (0 = none)")
		faultRt  = flag.Float64("fault-rate", 0, "injected transient-failure rate per simulation (seeded, deterministic; retried with backoff)")
		metrics  = flag.String("metrics-addr", "", "serve Prometheus /metrics, expvar /debug/vars, and /debug/pprof/ on this address (e.g. 127.0.0.1:0)")
	)
	flag.Parse()

	if *metrics != "" {
		srv, err := obs.ServeMetrics(*metrics, obs.Default)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "simgen: serving metrics on http://%s/metrics\n", srv.Addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	sys, err := dynsys.ByName(*system)
	if err != nil {
		fatal(err)
	}
	var inj *faults.Injector
	if *faultRt > 0 {
		inj = faults.New(faults.Config{Seed: *seed, TransientRate: *faultRt})
		sys = inj.Wrap(sys)
	}
	if *ensemble {
		if err := dumpEnsemble(ctx, os.Stdout, sys, *scheme, *budget, *res, *samples, *seed, *format); err != nil {
			fatal(err)
		}
	} else if err := dumpTrajectory(ctx, os.Stdout, sys, *params, *samples, *format); err != nil {
		fatal(err)
	}
	if inj != nil {
		s := inj.Stats()
		fmt.Fprintf(os.Stderr, "simgen: faults: %d attempts, %d transient failures across %d sims (all retried)\n",
			s.Attempts, s.TransientFailures, s.TransientSims)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simgen:", err)
	os.Exit(1)
}

func dumpTrajectory(ctx context.Context, w io.Writer, sys dynsys.System, params string, samples int, format string) error {
	vals := dynsys.ReferenceParams(sys)
	if params != "" {
		parts := strings.Split(params, ",")
		if len(parts) != len(sys.Params()) {
			return fmt.Errorf("%s needs %d parameters, got %d", sys.Name(), len(sys.Params()), len(parts))
		}
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return fmt.Errorf("bad parameter %q: %v", p, err)
			}
			vals[i] = v
		}
	}
	traj, err := trajectoryWithRetry(ctx, sys, vals, samples)
	if err != nil {
		return err
	}
	switch format {
	case "json":
		return json.NewEncoder(w).Encode(map[string]interface{}{
			"system":     sys.Name(),
			"params":     vals,
			"trajectory": traj,
		})
	case "csv":
		cw := csv.NewWriter(w)
		header := []string{"sample"}
		for d := 0; d < sys.StateDim(); d++ {
			header = append(header, fmt.Sprintf("state%d", d))
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		for i, st := range traj {
			row := []string{strconv.Itoa(i)}
			for _, v := range st {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	return fmt.Errorf("unknown format %q", format)
}

// trajectoryWithRetry runs one trajectory through the ctx-aware path so
// deadlines apply and injected transient failures are retried.
func trajectoryWithRetry(ctx context.Context, sys dynsys.System, vals []float64, samples int) ([][]float64, error) {
	var traj [][]float64
	_, err := faults.RetryPolicy{BaseBackoff: time.Millisecond}.Run(ctx, faults.SimKey(0, vals), func(actx context.Context) error {
		var terr error
		traj, terr = dynsys.TrajectoryCtx(actx, sys, vals, samples)
		return terr
	})
	return traj, err
}

func dumpEnsemble(ctx context.Context, out io.Writer, sys dynsys.System, scheme string, budget, res, samples int, seed int64, format string) error {
	space := ensemble.NewSpace(sys, res, samples)
	var sims []ensemble.Sim
	rng := rand.New(rand.NewSource(seed))
	switch scheme {
	case "random":
		sims = ensemble.RandomSample(space, budget, rng)
	case "grid":
		sims = ensemble.GridSample(space, budget)
	case "slice":
		sims = ensemble.SliceSample(space, budget, rng)
	default:
		return fmt.Errorf("unknown scheme %q", scheme)
	}
	se, stats, err := ensemble.EncodeCtx(ctx, space, sims, ensemble.EncodeOptions{
		Retry: faults.RetryPolicy{BaseBackoff: time.Millisecond},
	})
	if err != nil {
		return err
	}
	if stats.FailedSims > 0 || stats.QuarantinedCells > 0 || stats.RetriedSims > 0 {
		fmt.Fprintf(os.Stderr, "simgen: encode: %d executed, %d retried, %d failed sims; %d cells quarantined\n",
			stats.ExecutedSims, stats.RetriedSims, stats.FailedSims, stats.QuarantinedCells)
	}
	switch format {
	case "json":
		type cell struct {
			Index []int   `json:"index"`
			Value float64 `json:"value"`
		}
		var cells []cell
		se.Tensor.Each(func(idx []int, v float64) {
			cells = append(cells, cell{Index: append([]int(nil), idx...), Value: v})
		})
		return json.NewEncoder(out).Encode(map[string]interface{}{
			"system":  sys.Name(),
			"shape":   se.Tensor.Shape,
			"numSims": se.NumSims,
			"cells":   cells,
		})
	case "csv":
		w := csv.NewWriter(out)
		header := make([]string, 0, space.Order()+1)
		for m := 0; m < space.Order(); m++ {
			header = append(header, space.ModeName(m))
		}
		header = append(header, "value")
		if err := w.Write(header); err != nil {
			return err
		}
		var werr error
		se.Tensor.Each(func(idx []int, v float64) {
			if werr != nil {
				return
			}
			row := make([]string, 0, len(idx)+1)
			for _, i := range idx {
				row = append(row, strconv.Itoa(i))
			}
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			werr = w.Write(row)
		})
		if werr != nil {
			return werr
		}
		w.Flush()
		return w.Error()
	}
	return fmt.Errorf("unknown format %q", format)
}
