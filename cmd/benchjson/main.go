// Command benchjson runs the kernel-level benchmark suite and emits a
// machine-readable JSON summary (benchmark name → ns/op plus, where the
// benchmark reports allocations, allocs/op and B/op). CI uploads the file
// as a build artifact so kernel performance can be tracked across
// commits; the checked-in BENCH_6.json is one such snapshot taken at
// M2TD_BENCH_RES=16.
//
// Usage:
//
//	benchjson [-out BENCH_6.json] [-bench <regex>] [-benchtime 1x] [-pkgs ./...]
//	benchjson -diff [flags] OLD.json NEW.json
//
// In collection mode the benchmarks run in a `go test` subprocess so they
// execute exactly as `make bench` runs them; this command only parses the
// standard benchmark output lines, e.g.
//
//	BenchmarkTTMSparse-8   1694   761343 ns/op   31352 B/op   9 allocs/op
//
// In diff mode the command compares two snapshots and exits nonzero when
// NEW regresses against OLD: ns/op growth beyond -tol (per-benchmark
// overrides via -tol-bench), allocs/op growth beyond -allocs-tol, or a
// baseline benchmark missing from NEW (unless -allow-missing). -shape
// additionally asserts a worker-scaling curve in NEW is monotone
// non-increasing up to -shape-slack, and -speedup FAST:SLOW:MIN asserts
// SLOW is at least MIN times slower than FAST within NEW (the sketch
// fast-path gate — both sides of the ratio come from the same machine,
// so it holds at a tight threshold where cross-machine timings cannot).
// Exit codes: 0 pass, 1 regression or shape/speedup violation, 2
// unreadable or malformed input. This is the CI bench-regression gate.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"

	"repro/internal/benchjson"
)

// defaultBench selects the kernel benchmarks worth tracking: TTM and
// ModeGram variants, HOSVD/HOOI (plain and sketched), workspace chains,
// and stitching.
const defaultBench = "BenchmarkTTM|BenchmarkModeGram|BenchmarkWorkspace|BenchmarkHOSVD|BenchmarkHOOI|BenchmarkParallelHOSVD|BenchmarkParallelTTM|BenchmarkStitching|BenchmarkSketched"

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// diffConfig carries the parsed diff-mode flags.
type diffConfig struct {
	tolerance    float64
	perBench     map[string]float64
	allocsTol    int64
	allowMissing bool
	shapes       []string
	shapeSlack   float64
	speedups     []string
}

func main() {
	var (
		out       = flag.String("out", "BENCH_6.json", "output JSON path (collection mode)")
		bench     = flag.String("bench", defaultBench, "benchmark selection regex passed to go test -bench")
		benchtime = flag.String("benchtime", "", "benchtime passed to go test (empty = default)")
		pkgs      = flag.String("pkgs", "./...", "package pattern to benchmark")

		diffMode     = flag.Bool("diff", false, "compare two snapshots: benchjson -diff OLD.json NEW.json")
		tol          = flag.Float64("tol", benchjson.DefaultTolerance, "allowed relative ns/op growth (diff mode)")
		allocsTol    = flag.Int64("allocs-tol", 0, "allowed absolute allocs/op growth (diff mode)")
		allowMissing = flag.Bool("allow-missing", false, "baseline benchmarks missing from NEW are notes, not failures (diff mode)")
		shapeSlack   = flag.Float64("shape-slack", 0.05, "relative slack for -shape monotonicity (diff mode)")
	)
	var tolBench, shapes, speedups stringList
	flag.Var(&tolBench, "tol-bench", "per-benchmark tolerance override NAME=FRAC; prefix keys cover sub-benchmarks (repeatable, diff mode)")
	flag.Var(&shapes, "shape", "assert NEW's GROUP/workers=N curve is monotone non-increasing (repeatable, diff mode)")
	flag.Var(&speedups, "speedup", "assert SLOW >= MIN x FAST within NEW, as FAST:SLOW:MIN (repeatable, diff mode)")
	flag.Parse()

	if *diffMode {
		cfg := diffConfig{
			tolerance:    *tol,
			perBench:     make(map[string]float64),
			allocsTol:    *allocsTol,
			allowMissing: *allowMissing,
			shapes:       shapes,
			shapeSlack:   *shapeSlack,
			speedups:     speedups,
		}
		for _, kv := range tolBench {
			name, frac, ok := strings.Cut(kv, "=")
			if !ok {
				fmt.Fprintf(os.Stderr, "benchjson: -tol-bench %q: want NAME=FRAC\n", kv)
				os.Exit(2)
			}
			v, err := strconv.ParseFloat(frac, 64)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -tol-bench %q: %v\n", kv, err)
				os.Exit(2)
			}
			cfg.perBench[name] = v
		}
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two arguments: OLD.json NEW.json")
			os.Exit(2)
		}
		os.Exit(runDiff(cfg, flag.Arg(0), flag.Arg(1), os.Stdout, os.Stderr))
	}

	os.Exit(runCollect(*out, *bench, *benchtime, *pkgs))
}

// runDiff executes diff mode and returns the process exit code: 0 pass,
// 1 regression or shape violation, 2 unreadable or malformed input.
func runDiff(cfg diffConfig, oldPath, newPath string, stdout, stderr io.Writer) int {
	baseline, err := benchjson.LoadFile(oldPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: baseline: %v\n", err)
		return 2
	}
	current, err := benchjson.LoadFile(newPath)
	if err != nil {
		fmt.Fprintf(stderr, "benchjson: new run: %v\n", err)
		return 2
	}

	entries := benchjson.Diff(baseline, current, benchjson.DiffOptions{
		Tolerance:       cfg.tolerance,
		PerBench:        cfg.perBench,
		AllocsTolerance: cfg.allocsTol,
		AllowMissing:    cfg.allowMissing,
	})
	for _, e := range entries {
		mark := " "
		if e.Failed {
			mark = "!"
		}
		switch e.Status {
		case benchjson.StatusMissing:
			fmt.Fprintf(stdout, "%s %-14s %s: %s\n", mark, e.Status, e.Name, e.Detail)
		case benchjson.StatusNew:
			fmt.Fprintf(stdout, "%s %-14s %s: %.0f ns/op\n", mark, e.Status, e.Name, e.NewNs)
		default:
			detail := ""
			if e.Detail != "" {
				detail = " — " + e.Detail
			}
			fmt.Fprintf(stdout, "%s %-14s %s: %.0f -> %.0f ns/op (%.2fx)%s\n",
				mark, e.Status, e.Name, e.OldNs, e.NewNs, e.Ratio, detail)
		}
	}

	failed := benchjson.AnyFailed(entries)
	for _, group := range cfg.shapes {
		for _, problem := range benchjson.CheckMonotone(current, group, cfg.shapeSlack) {
			fmt.Fprintf(stdout, "! shape          %s\n", problem)
			failed = true
		}
	}
	for _, spec := range cfg.speedups {
		for _, problem := range benchjson.CheckSpeedup(current, spec) {
			fmt.Fprintf(stdout, "! speedup        %s\n", problem)
			failed = true
		}
	}
	if failed {
		fmt.Fprintf(stderr, "benchjson: regression detected (%s vs %s)\n", newPath, oldPath)
		return 1
	}
	fmt.Fprintf(stderr, "benchjson: %d benchmarks within tolerance\n", len(entries))
	return 0
}

// runCollect executes collection mode and returns the process exit code.
func runCollect(out, bench, benchtime, pkgs string) int {
	args := []string{"test", "-run=NONE", "-bench", bench, "-benchmem"}
	if benchtime != "" {
		args = append(args, "-benchtime", benchtime)
	}
	args = append(args, pkgs)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "benchjson: go %v\n", args)
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		return 1
	}
	os.Stdout.Write(buf.Bytes())

	results := benchjson.Parse(buf.String())
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		return 1
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make(map[string]benchjson.Result, len(results))
	for _, name := range names {
		ordered[name] = results[name]
	}
	data, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), out)
	return 0
}
