// Command benchjson runs the kernel-level benchmark suite and emits a
// machine-readable JSON summary (benchmark name → ns/op plus, where the
// benchmark reports allocations, allocs/op and B/op). CI uploads the file
// as a build artifact so kernel performance can be tracked across
// commits; the checked-in BENCH_2.json is one such snapshot taken at
// M2TD_BENCH_RES=16.
//
// Usage:
//
//	benchjson [-out BENCH_2.json] [-bench <regex>] [-benchtime 1x] [-pkgs ./...]
//
// The benchmarks run in a `go test` subprocess so they execute exactly as
// `make bench` runs them; this command only parses the standard benchmark
// output lines, e.g.
//
//	BenchmarkTTMSparse-8   1694   761343 ns/op   31352 B/op   9 allocs/op
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"

	"repro/internal/benchjson"
)

// defaultBench selects the kernel benchmarks worth tracking: TTM and
// ModeGram variants, HOSVD/HOOI, workspace chains, and stitching.
const defaultBench = "BenchmarkTTM|BenchmarkModeGram|BenchmarkWorkspace|BenchmarkHOSVD|BenchmarkHOOI|BenchmarkParallelHOSVD|BenchmarkParallelTTM|BenchmarkStitching"

func main() {
	var (
		out       = flag.String("out", "BENCH_2.json", "output JSON path")
		bench     = flag.String("bench", defaultBench, "benchmark selection regex passed to go test -bench")
		benchtime = flag.String("benchtime", "", "benchtime passed to go test (empty = default)")
		pkgs      = flag.String("pkgs", "./...", "package pattern to benchmark")
	)
	flag.Parse()

	args := []string{"test", "-run=NONE", "-bench", *bench, "-benchmem"}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkgs)

	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	var buf bytes.Buffer
	cmd.Stdout = &buf
	fmt.Fprintf(os.Stderr, "benchjson: go %v\n", args)
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(buf.Bytes())

	results := benchjson.Parse(buf.String())
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	ordered := make(map[string]benchjson.Result, len(results))
	for _, name := range names {
		ordered[name] = results[name]
	}
	data, err := json.MarshalIndent(ordered, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), *out)
}
