package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeSnapshot writes a BENCH-style JSON file into the test's temp dir.
func writeSnapshot(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// diffExit runs runDiff with default gate settings and returns the exit
// code plus captured output.
func diffExit(t *testing.T, cfg diffConfig, oldPath, newPath string) (int, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := runDiff(cfg, oldPath, newPath, &stdout, &stderr)
	return code, stdout.String() + stderr.String()
}

func defaultCfg() diffConfig {
	return diffConfig{tolerance: 0.25, shapeSlack: 0.05}
}

func TestRunDiffRegressionExitsOne(t *testing.T) {
	old := writeSnapshot(t, "old.json", `{"BenchmarkA": {"ns_per_op": 1000, "iterations": 100}}`)
	cur := writeSnapshot(t, "new.json", `{"BenchmarkA": {"ns_per_op": 2000, "iterations": 100}}`)
	code, out := diffExit(t, defaultCfg(), old, cur)
	if code != 1 {
		t.Fatalf("2x regression: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "regression") {
		t.Fatalf("output should name the regression:\n%s", out)
	}
}

func TestRunDiffImprovementExitsZero(t *testing.T) {
	old := writeSnapshot(t, "old.json", `{"BenchmarkA": {"ns_per_op": 2000, "iterations": 100}}`)
	cur := writeSnapshot(t, "new.json", `{"BenchmarkA": {"ns_per_op": 1000, "iterations": 100}}`)
	if code, out := diffExit(t, defaultCfg(), old, cur); code != 0 {
		t.Fatalf("2x improvement: exit %d, want 0\n%s", code, out)
	}
}

func TestRunDiffMissingBenchmark(t *testing.T) {
	old := writeSnapshot(t, "old.json", `{"BenchmarkGone": {"ns_per_op": 1000, "iterations": 100}}`)
	cur := writeSnapshot(t, "new.json", `{}`)
	if code, out := diffExit(t, defaultCfg(), old, cur); code != 1 {
		t.Fatalf("vanished benchmark: exit %d, want 1\n%s", code, out)
	}
	cfg := defaultCfg()
	cfg.allowMissing = true
	if code, out := diffExit(t, cfg, old, cur); code != 0 {
		t.Fatalf("vanished benchmark with -allow-missing: exit %d, want 0\n%s", code, out)
	}
}

func TestRunDiffMalformedJSONExitsTwo(t *testing.T) {
	old := writeSnapshot(t, "old.json", `{"BenchmarkA": {"ns_per_op": 1000, "iterations": 100}}`)
	bad := writeSnapshot(t, "new.json", `{"BenchmarkA": {`)
	if code, out := diffExit(t, defaultCfg(), old, bad); code != 2 {
		t.Fatalf("malformed NEW: exit %d, want 2\n%s", code, out)
	}
	if code, out := diffExit(t, defaultCfg(), bad, old); code != 2 {
		t.Fatalf("malformed OLD: exit %d, want 2\n%s", code, out)
	}
	missing := filepath.Join(t.TempDir(), "nope.json")
	if code, out := diffExit(t, defaultCfg(), old, missing); code != 2 {
		t.Fatalf("unreadable NEW: exit %d, want 2\n%s", code, out)
	}
}

func TestRunDiffShapeGate(t *testing.T) {
	old := writeSnapshot(t, "old.json", `{}`)
	inverted := writeSnapshot(t, "new.json", `{
		"BenchmarkParallelHOSVD/workers=1": {"ns_per_op": 11300000, "iterations": 100},
		"BenchmarkParallelHOSVD/workers=2": {"ns_per_op": 16100000, "iterations": 100},
		"BenchmarkParallelHOSVD/workers=4": {"ns_per_op": 24800000, "iterations": 100}
	}`)
	cfg := defaultCfg()
	cfg.allowMissing = true
	cfg.shapes = []string{"BenchmarkParallelHOSVD"}
	code, out := diffExit(t, cfg, old, inverted)
	if code != 1 {
		t.Fatalf("inverted scaling curve: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "inversion") {
		t.Fatalf("output should name the inversion:\n%s", out)
	}

	flat := writeSnapshot(t, "flat.json", `{
		"BenchmarkParallelHOSVD/workers=1": {"ns_per_op": 11700000, "iterations": 100},
		"BenchmarkParallelHOSVD/workers=2": {"ns_per_op": 10800000, "iterations": 100},
		"BenchmarkParallelHOSVD/workers=4": {"ns_per_op": 10200000, "iterations": 100}
	}`)
	if code, out := diffExit(t, cfg, old, flat); code != 0 {
		t.Fatalf("monotone curve: exit %d, want 0\n%s", code, out)
	}
}
