// Command m2tdworker is a standalone D-M2TD worker process for the
// multi-process engine (internal/distnet).
//
// It is normally spawned BY a coordinator, which passes its listen
// address, the shared artifact catalog, and the worker id through the
// M2TD_DISTNET_* environment — in that mode any binary calling
// m2td.MaybeDistWorker works, and this command is the minimal one.
//
// It can also be pointed at a coordinator explicitly, for running
// workers by hand (other machines' containers, debugging under strace):
//
//	m2tdworker -addr 127.0.0.1:7000 -dir /shared/catalog -id 3
//
// Flags mirror the environment; the environment wins when both are set.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	m2td "repro"
	"repro/internal/distnet"
)

func main() {
	// Coordinator-spawned mode: the environment says everything and
	// MaybeDistWorker never returns.
	m2td.MaybeDistWorker()

	var (
		addr = flag.String("addr", "", "coordinator address (required)")
		dir  = flag.String("dir", "", "shared artifact catalog directory (required)")
		id   = flag.Int("id", 0, "worker id")
		beat = flag.Duration("beat", 250*time.Millisecond, "heartbeat period")
	)
	flag.Parse()
	if *addr == "" || *dir == "" {
		fmt.Fprintln(os.Stderr, "m2tdworker: -addr and -dir are required (or the M2TD_DISTNET_* environment)")
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	err := distnet.RunWorker(ctx, distnet.WorkerConfig{Addr: *addr, Dir: *dir, ID: *id, Beat: *beat})
	if err != nil {
		fmt.Fprintf(os.Stderr, "m2tdworker %d: %v\n", *id, err)
		os.Exit(1)
	}
}
