// Command loadgen hammers a campaign server with concurrent typed-API
// clients and reports latency percentiles plus serving-efficiency rates
// (coalescing, cache hits, recompute fraction).
//
// With -addr it targets a running `tensorstore serve`; without it, it
// self-hosts a server over a temporary store so one invocation measures
// the full serving stack. The workload cycles -requests submissions
// through -distinct campaign configs across -tenants tenants, so most
// submissions are duplicates — exactly the ensemble-reuse pattern the
// serving layer exists for. Every duplicate must be absorbed by
// coalescing, the LRU, or the store: the command exits nonzero when the
// server recomputes a duplicate, when any request fails, or when no
// coalescing/cache activity is observed at all.
//
// With -out the percentiles are written as a BENCH_9.json-style snapshot
// (the benchjson schema) so CI can diff runs against the checked-in
// baseline:
//
//	loadgen -requests 200 -clients 8 -distinct 8 -out BENCH_9.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	m2td "repro"
	"repro/api"
	"repro/internal/benchjson"
	"repro/internal/dynsys"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	m2td.MaybeDistWorker()
	var (
		addr     = flag.String("addr", "", "server base URL; empty self-hosts over a temporary store")
		clients  = flag.Int("clients", 8, "concurrent client goroutines")
		requests = flag.Int("requests", 200, "total campaign submissions")
		distinct = flag.Int("distinct", 8, "distinct campaign configs cycled through the submissions")
		tenants  = flag.Int("tenants", 4, "tenant identities cycled through the submissions")
		system   = flag.String("system", "double-pendulum", "campaign dynamical system")
		res      = flag.Int("res", 4, "campaign grid resolution")
		samples  = flag.Int("samples", 3, "campaign time samples")
		rank     = flag.Int("rank", 2, "campaign Tucker rank")
		blockers = flag.Int("blockers", 8, "slow campaigns submitted first to occupy every executor, making the coalescing assertion deterministic; must be at least the server's executor count")
		out      = flag.String("out", "", "write percentile snapshot in the benchjson schema to this path")
	)
	flag.Parse()
	if err := run(*addr, *clients, *requests, *distinct, *tenants, *system, *res, *samples, *rank, *blockers, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(addr string, clients, requests, distinct, tenants int, system string, res, samples, rank, blockers int, out string) error {
	if clients < 1 || requests < 1 || distinct < 1 || tenants < 1 {
		return fmt.Errorf("-clients, -requests, -distinct, -tenants must be positive")
	}
	if distinct > requests {
		distinct = requests
	}
	ctx := context.Background()

	if addr == "" {
		base, shutdown, err := selfHost()
		if err != nil {
			return err
		}
		defer shutdown()
		addr = base
	}

	// Mid-range physical parameter values for the predict calls.
	sys, err := dynsys.ByName(system)
	if err != nil {
		return err
	}
	var params []float64
	for _, p := range sys.Params() {
		params = append(params, (p.Min+p.Max)/2)
	}

	spec := func(i int) api.CampaignSpec {
		return api.CampaignSpec{
			System:      system,
			Resolution:  res,
			TimeSamples: samples,
			Rank:        rank,
			Seed:        int64(1 + i%distinct),
		}
	}
	tenant := func(i int) string { return "load-" + strconv.Itoa(i%tenants) }
	client := api.NewClient(addr)

	// Occupy every executor with distinctly-seeded blocker campaigns so
	// the workload campaigns primed below are guaranteed to still be
	// queued when their duplicates arrive: the coalescing assertion is a
	// certainty, not a race against a fast executor. In-process campaigns
	// at these grid sizes finish in well under a millisecond, so the
	// blockers request the multi-process engine — worker-process spawn
	// and store round-trips put a hard physical floor under their wall
	// clock that no warm cache can erode.
	var blockerIDs []string
	for i := 0; i < blockers; i++ {
		sub, err := client.Submit(ctx, api.SubmitRequest{Tenant: "load-blocker", Campaign: api.CampaignSpec{
			System:      system,
			Resolution:  res + 2,
			TimeSamples: samples,
			Rank:        rank,
			Seed:        int64(1000 + i),
			Distributed: &api.DistSpec{Workers: 2, Shards: 4},
		}})
		if err != nil {
			return fmt.Errorf("blocker submit %d: %w", i, err)
		}
		blockerIDs = append(blockerIDs, sub.JobID)
	}

	// Prime the coalescing path: each distinct campaign queues behind the
	// blockers, and its immediate duplicate must attach to it in flight.
	for i := 0; i < distinct; i++ {
		if _, err := client.Submit(ctx, api.SubmitRequest{Tenant: tenant(i), Campaign: spec(i)}); err != nil {
			return fmt.Errorf("prime submit %d: %w", i, err)
		}
		dup, err := client.Submit(ctx, api.SubmitRequest{Tenant: tenant(i + 1), Campaign: spec(i)})
		if err != nil {
			return fmt.Errorf("prime duplicate %d: %w", i, err)
		}
		if !dup.Coalesced {
			return fmt.Errorf("immediate duplicate of queued campaign %d did not coalesce: %+v", i, dup)
		}
	}

	var (
		mu                   sync.Mutex
		submitNS, campaignNS []float64
		statusNS, predictNS  []float64
		firstErr             error
	)
	record := func(dst *[]float64, start time.Time) {
		mu.Lock()
		*dst = append(*dst, float64(time.Since(start).Nanoseconds()))
		mu.Unlock()
	}
	failf := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}

	next := make(chan int, requests)
	for i := 0; i < requests; i++ {
		next <- i
	}
	close(next)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := api.NewClient(addr)
			for i := range next {
				start := time.Now()
				sub, err := cl.Submit(ctx, api.SubmitRequest{Tenant: tenant(i), Campaign: spec(i)})
				if err != nil {
					failf("submit %d: %v", i, err)
					return
				}
				record(&submitNS, start)
				st, err := cl.Wait(ctx, sub.JobID, 50*time.Millisecond)
				if err != nil {
					failf("wait %d: %v", i, err)
					return
				}
				if st.State != api.StateDone {
					failf("campaign %d finished %s: %v", i, st.State, st.Error)
					return
				}
				record(&campaignNS, start)

				qStart := time.Now()
				if _, err := cl.Status(ctx, sub.JobID, 0); err != nil {
					failf("status %d: %v", i, err)
					return
				}
				record(&statusNS, qStart)

				pStart := time.Now()
				if _, err := cl.Predict(ctx, sub.JobID, params); err != nil {
					failf("predict %d: %v", i, err)
					return
				}
				record(&predictNS, pStart)
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}

	// Let the blockers drain before the final accounting.
	for i, id := range blockerIDs {
		st, err := client.Wait(ctx, id, 50*time.Millisecond)
		if err != nil {
			return fmt.Errorf("blocker wait %d: %w", i, err)
		}
		if st.State != api.StateDone {
			return fmt.Errorf("blocker %d finished %s: %v", i, st.State, st.Error)
		}
	}

	// A final duplicate sweep over finished campaigns guarantees cache (or
	// store) hits are exercised even when the concurrent phase coalesced
	// every duplicate.
	for i := 0; i < distinct; i++ {
		sub, err := client.Submit(ctx, api.SubmitRequest{Tenant: tenant(i), Campaign: spec(i)})
		if err != nil {
			return fmt.Errorf("sweep submit %d: %w", i, err)
		}
		if !sub.CacheHit && !sub.StoreHit {
			return fmt.Errorf("duplicate of finished campaign %d recomputed: %+v", i, sub)
		}
	}

	stats, err := client.Stats(ctx)
	if err != nil {
		return err
	}
	if stats.Coalesced == 0 {
		return fmt.Errorf("no submissions coalesced (stats %+v)", stats)
	}
	if stats.CacheHits == 0 {
		return fmt.Errorf("no cache hits (stats %+v)", stats)
	}
	if stats.JobsFailed > 0 {
		return fmt.Errorf("%d campaigns failed", stats.JobsFailed)
	}
	recompute := float64(stats.JobsDone) / float64(stats.Submits)

	fmt.Printf("loadgen: %d requests, %d clients, %d distinct campaigns, %d tenants\n",
		requests, clients, distinct, tenants)
	fmt.Printf("  jobs done %d, coalesced %d, cache hits %d, store hits %d (recompute fraction %.4f)\n",
		stats.JobsDone, stats.Coalesced, stats.CacheHits, stats.StoreHits, recompute)
	report := map[string]benchjson.Result{
		"LoadgenRecomputeFraction": {NsPerOp: recompute, Iterations: stats.Submits},
	}
	for name, lat := range map[string][]float64{
		"LoadgenSubmit":   submitNS,
		"LoadgenCampaign": campaignNS,
		"LoadgenStatus":   statusNS,
		"LoadgenPredict":  predictNS,
	} {
		sort.Float64s(lat)
		for _, q := range []struct {
			label string
			frac  float64
		}{{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}} {
			ns := percentile(lat, q.frac)
			fmt.Printf("  %-16s %s %9.3f ms\n", name, q.label, ns/1e6)
			report[name+"/"+q.label] = benchjson.Result{NsPerOp: ns, Iterations: int64(len(lat))}
		}
	}

	if out != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", out)
	}
	return nil
}

// percentile returns the value at quantile q of sorted ns samples
// (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// selfHost spins up an in-process campaign server over a temporary store
// and returns its base URL and a shutdown function.
func selfHost() (string, func(), error) {
	dir, err := os.MkdirTemp("", "loadgen-store-")
	if err != nil {
		return "", nil, err
	}
	st, err := store.Open(dir)
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	s, err := serve.New(serve.Options{Store: st, Registry: obs.NewRegistry()})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		cancel()
		os.RemoveAll(dir)
		return "", nil, err
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	shutdown := func() {
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		_ = s.Shutdown(sctx)
		_ = srv.Shutdown(sctx)
		cancel()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}
