package m2td

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dynsys"
)

// System is a typed identifier for one of the built-in dynamical systems.
//
// Config.System holds this type; untyped string literals keep assigning to
// it unchanged ("double-pendulum" still compiles), so the typed API is a
// drop-in for existing callers. Use ParseSystem to validate free-form
// input (CLI flags, config files) eagerly instead of at run time.
type System string

// The built-in dynamical systems (internal/dynsys).
const (
	SystemDoublePendulum System = "double-pendulum"
	SystemTriplePendulum System = "triple-pendulum"
	SystemLorenz         System = "lorenz"
	SystemSEIR           System = "seir"
)

// String returns the canonical system name.
func (s System) String() string { return string(s) }

// Valid reports whether the system names a built-in dynamical system.
func (s System) Valid() bool {
	_, err := dynsys.ByName(string(s))
	return err == nil
}

// ParseSystem maps a free-form system name (case-insensitive) to its
// typed identifier, validating it against the built-in systems.
func ParseSystem(name string) (System, error) {
	s := System(strings.ToLower(strings.TrimSpace(name)))
	if !s.Valid() {
		return "", fmt.Errorf("m2td: unknown system %q (want one of %s)", name, strings.Join(Systems(), ", "))
	}
	return s, nil
}

// AllSystems lists the built-in systems as typed identifiers.
func AllSystems() []System {
	out := make([]System, 0, 4)
	for _, s := range dynsys.All() {
		out = append(out, System(s.Name()))
	}
	return out
}

// Method is a typed identifier for the M2TD pivot-factor fusion strategy.
//
// Config.Method holds this type; untyped string literals ("select", …)
// keep assigning to it unchanged. ParseMethod accepts the historical
// aliases ("average", "M2TD-SELECT", …) case-insensitively.
type Method string

// The three fusion strategies of the paper's Section VI.
const (
	MethodAVG    Method = "avg"
	MethodCONCAT Method = "concat"
	MethodSELECT Method = "select"
)

// String returns the canonical (lower-case) method name.
func (m Method) String() string { return string(m) }

// Valid reports whether the method (or one of its aliases) names a fusion
// strategy.
func (m Method) Valid() bool {
	_, err := m.core()
	return err == nil
}

// core maps the method (including aliases, case-insensitively) to the
// internal core.Method constant.
func (m Method) core() (core.Method, error) {
	switch strings.ToLower(strings.TrimSpace(string(m))) {
	case "avg", "average", "m2td-avg":
		return core.AVG, nil
	case "concat", "concatenate", "m2td-concat":
		return core.CONCAT, nil
	case "select", "selection", "m2td-select":
		return core.SELECT, nil
	}
	return "", fmt.Errorf("m2td: unknown method %q (want avg, concat, or select)", string(m))
}

// ParseMethod maps a free-form method name — canonical names, long forms,
// or the paper's "M2TD-*" spellings, case-insensitively — to its canonical
// typed identifier.
func ParseMethod(name string) (Method, error) {
	cm, err := Method(name).core()
	if err != nil {
		return "", err
	}
	switch cm {
	case core.AVG:
		return MethodAVG, nil
	case core.CONCAT:
		return MethodCONCAT, nil
	default:
		return MethodSELECT, nil
	}
}

// AllMethods lists the fusion strategies in paper order.
func AllMethods() []Method { return []Method{MethodAVG, MethodCONCAT, MethodSELECT} }
