package m2td

import "testing"

func TestParseSystemRoundTrip(t *testing.T) {
	for _, s := range AllSystems() {
		got, err := ParseSystem(s.String())
		if err != nil {
			t.Errorf("ParseSystem(%q): %v", s, err)
		}
		if got != s {
			t.Errorf("ParseSystem(%q) = %q, want identity", s, got)
		}
		if !s.Valid() {
			t.Errorf("%q.Valid() = false", s)
		}
	}
}

func TestParseSystemNormalizes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want System
	}{
		{"LORENZ", SystemLorenz},
		{"  lorenz ", SystemLorenz},
		{"Double-Pendulum", SystemDoublePendulum},
		{"seir", SystemSEIR},
	} {
		got, err := ParseSystem(tc.in)
		if err != nil {
			t.Errorf("ParseSystem(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseSystem(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "pendulum", "lorenz96"} {
		if got, err := ParseSystem(bad); err == nil {
			t.Errorf("ParseSystem(%q) = %q, want error", bad, got)
		}
	}
	if System("bogus").Valid() {
		t.Error(`System("bogus").Valid() = true`)
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	if got := AllMethods(); len(got) != 3 {
		t.Fatalf("AllMethods() = %v", got)
	}
	for _, m := range AllMethods() {
		got, err := ParseMethod(m.String())
		if err != nil {
			t.Errorf("ParseMethod(%q): %v", m, err)
		}
		if got != m {
			t.Errorf("ParseMethod(%q) = %q, want identity", m, got)
		}
		if !m.Valid() {
			t.Errorf("%q.Valid() = false", m)
		}
	}
}

// TestParseMethodAliases covers the historical spellings the string API
// accepted: long forms and the paper's "M2TD-*" names, case-insensitive.
func TestParseMethodAliases(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Method
	}{
		{"AVG", MethodAVG},
		{"average", MethodAVG},
		{"M2TD-AVG", MethodAVG},
		{"concatenate", MethodCONCAT},
		{"m2td-concat", MethodCONCAT},
		{"Selection", MethodSELECT},
		{"M2TD-SELECT", MethodSELECT},
		{" select ", MethodSELECT},
	} {
		got, err := ParseMethod(tc.in)
		if err != nil {
			t.Errorf("ParseMethod(%q): %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseMethod(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	for _, bad := range []string{"", "mean", "svd"} {
		if got, err := ParseMethod(bad); err == nil {
			t.Errorf("ParseMethod(%q) = %q, want error", bad, got)
		}
	}
}

// TestEnumLiteralCompatibility locks in the migration promise: untyped
// string literals assign to the typed fields and still run.
func TestEnumLiteralCompatibility(t *testing.T) {
	cfg := Config{
		System:       "lorenz",   // untyped literal → System
		Method:       "M2TD-AVG", // historical alias → Method
		Resolution:   5,
		TimeSamples:  4,
		Rank:         2,
		Seed:         3,
		SkipAccuracy: true,
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("string-literal config: %v", err)
	}
}
